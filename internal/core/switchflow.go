package core

import (
	"repro/internal/units"
)

// SwitchFlow models FlexWatts' voltage-noise-free mode-switching flow (§6):
// to retarget the shared V_IN rail and reconfigure the hybrid VRs without
// injecting noise into running domains, the PMU (1) enters package C6 —
// compute contexts are saved to always-on SRAM and compute voltages drop to
// zero, (2) moves the off-chip and on-chip VRs to the new mode's levels,
// (3) exits C6 and resumes in the new mode.
type SwitchFlow struct {
	// EnterC6 is the package-C6 entry latency (context save, clock/voltage
	// off); §6 measures ~45 µs without voltage changes.
	EnterC6 units.Second
	// AdjustVR covers retargeting the on-chip hybrid VRs (≤2 µs) and
	// slewing the off-chip V_IN at ~50 mV/µs; §6 totals ~19 µs.
	AdjustVR units.Second
	// ExitC6 is the package-C6 exit latency (~30 µs).
	ExitC6 units.Second
	// C6Power is the platform power drawn while parked in C6 during the
	// switch; the energy cost of a switch is Latency()·C6Power.
	C6Power units.Watt
}

// DefaultSwitchFlow returns the paper's measured flow: 45 + 19 + 30 ≈ 94 µs
// total, well under the up-to-500 µs DVFS transitions client parts already
// tolerate (§6).
func DefaultSwitchFlow() SwitchFlow {
	return SwitchFlow{
		EnterC6:  units.MicroSecond(45),
		AdjustVR: units.MicroSecond(19),
		ExitC6:   units.MicroSecond(30),
		C6Power:  0.5, // platform C6 power (domain tables: SA 0.30 + IO 0.20)
	}
}

// Latency returns the total mode-switch latency.
func (f SwitchFlow) Latency() units.Second { return f.EnterC6 + f.AdjustVR + f.ExitC6 }

// Energy returns the energy spent parked in C6 for one switch.
func (f SwitchFlow) Energy() units.Watt { return f.C6Power * f.Latency() }

// Controller drives mode decisions over time: every evaluation interval it
// asks the predictor for the best mode and, if it differs from the current
// one, performs the switch flow. A minimum-residency hysteresis prevents
// thrashing when the two modes' predicted ETEEs cross repeatedly (ablated
// by BenchmarkAblationInterval).
type Controller struct {
	Predictor *Predictor
	Flow      SwitchFlow
	// Interval is the evaluation period (§6 uses 10 ms).
	Interval units.Second
	// MinResidency is the minimum time the PDN stays in a mode after a
	// switch before another switch is allowed.
	MinResidency units.Second

	mode        Mode
	sinceSwitch units.Second
	switches    int
}

// NewController returns a controller with the paper's parameters: a 10 ms
// evaluation interval and one-interval minimum residency, starting in
// IVR-Mode.
func NewController(p *Predictor, flow SwitchFlow) *Controller {
	return &Controller{
		Predictor:    p,
		Flow:         flow,
		Interval:     10e-3,
		MinResidency: 10e-3,
		mode:         IVRMode,
		sinceSwitch:  1, // allow an immediate first decision
	}
}

// Mode returns the current hybrid mode.
func (c *Controller) Mode() Mode { return c.mode }

// Switches returns how many mode transitions have occurred.
func (c *Controller) Switches() int { return c.switches }

// Step advances the controller by dt with the given runtime inputs and
// returns the mode to use for the elapsed interval plus any switch overhead
// (latency spent parked in C6, energy burned) incurred at the interval
// boundary.
func (c *Controller) Step(dt units.Second, in Inputs) (mode Mode, overhead units.Second, energy float64) {
	c.sinceSwitch += dt
	want := c.Predictor.Predict(in)
	if want != c.mode && c.sinceSwitch >= c.MinResidency {
		c.mode = want
		c.sinceSwitch = 0
		c.switches++
		return c.mode, c.Flow.Latency(), c.Flow.Energy()
	}
	return c.mode, 0, 0
}
