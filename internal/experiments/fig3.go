package experiments

import (
	"fmt"

	"repro/flexwatts/report"
	"repro/internal/sweep"
	"repro/internal/vr"
)

func init() { register("fig3", Fig3) }

// Fig3 regenerates Fig 3: off-chip VR efficiency as a function of output
// current (0.1–10 A, log-spaced), output voltage (0.6/0.7/1.0/1.8 V), and
// VR power state (PS0/PS1), at 7.2 V input. Each current point is one sweep
// cell producing a full table row.
func Fig3(e *Env) (*report.Dataset, error) {
	b := vr.NewVinVR(e.Params.VINIccmax)
	vouts := []float64{0.6, 0.7, 1.0, 1.8}
	states := []vr.PowerState{vr.PS0, vr.PS1}

	cols := []string{"Iout(A)"}
	for _, ps := range states {
		for _, vo := range vouts {
			cols = append(cols, fmt.Sprintf("%s/Vout=%.1f", ps, vo))
		}
	}

	const n = 13
	curve := vr.EfficiencyCurve(b, 7.2, 1.0, vr.PS0, 0.1, 10, n)
	pts := curve.Points()
	rows, err := sweep.Map(e.Workers, len(pts), func(i int) ([]report.Cell, error) {
		row := []report.Cell{report.Num(pts[i].X, "%.3g")}
		for _, ps := range states {
			for _, vo := range vouts {
				eta := b.Efficiency(vr.OperatingPoint{Vin: 7.2, Vout: vo, Iout: pts[i].X, State: ps})
				row = append(row, report.Pct(eta))
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	d := report.NewDataset("Fig 3: off-chip VR efficiency curves").
		SetMeta("vin", "7.2").
		SetMeta("vouts", floatsMeta(vouts))
	t := d.Table("Fig 3: off-chip VR efficiency curves (Vin=7.2V)", cols...)
	for _, row := range rows {
		t.AddRow(row...)
	}
	return d, nil
}
