package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/flexwatts/report"
)

// TestDatasetsWellFormed checks the typed layer's invariants for every
// registered experiment: a stamped id, a title, at least one table, every
// table fully rectangular (AddRow enforces this at build time; this guards
// the stored form), and every percentage cell carrying its fraction.
func TestDatasetsWellFormed(t *testing.T) {
	e := env(t)
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			d, err := Dataset(id, e)
			if err != nil {
				t.Fatal(err)
			}
			if d.ID != id {
				t.Errorf("dataset id = %q, want %q", d.ID, id)
			}
			if d.Title == "" {
				t.Error("dataset has no title")
			}
			if len(d.Tables) == 0 {
				t.Fatal("dataset has no tables")
			}
			for _, tab := range d.Tables {
				if len(tab.Columns) == 0 {
					t.Errorf("table %q has no columns", tab.Title)
				}
				for ri, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Fatalf("table %q row %d width %d != %d columns",
							tab.Title, ri, len(row), len(tab.Columns))
					}
					for ci, cell := range row {
						if cell.Kind == report.KindPct && !strings.HasSuffix(cell.Text, "%") {
							t.Errorf("table %q cell (%d,%d): pct cell text %q",
								tab.Title, ri, ci, cell.Text)
						}
						if cell.Kind == "" || cell.Text == "" && cell.Kind == report.KindString && ci == 0 {
							t.Errorf("table %q cell (%d,%d) untyped or empty key: %+v",
								tab.Title, ri, ci, cell)
						}
					}
				}
			}
		})
	}
}

// TestJSONRendererAllExperiments renders every experiment as JSON and
// round-trips it through encoding/json: the decoded dataset must equal the
// original, so machine consumers lose nothing the driver computed.
func TestJSONRendererAllExperiments(t *testing.T) {
	e := env(t)
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			d, err := Dataset(id, e)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := d.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			var got report.Dataset
			if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
				t.Fatalf("%s JSON does not parse: %v", id, err)
			}
			if !reflect.DeepEqual(&got, d) {
				t.Errorf("%s dataset does not round-trip through JSON", id)
			}
		})
	}
}

// TestCSVRendererAllExperiments renders every experiment as CSV and parses
// each table block back: the record count and width must match the dataset.
func TestCSVRendererAllExperiments(t *testing.T) {
	e := env(t)
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			d, err := Dataset(id, e)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := d.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			blocks := strings.Split(buf.String(), "\n\n")
			if len(blocks) != len(d.Tables) {
				t.Fatalf("%d CSV blocks for %d tables", len(blocks), len(d.Tables))
			}
			for bi, block := range blocks {
				var records [][]string
				for _, line := range strings.Split(block, "\n") {
					if strings.HasPrefix(line, "#") || strings.TrimSpace(line) == "" {
						continue
					}
					rec, err := csv.NewReader(strings.NewReader(line)).Read()
					if err != nil {
						t.Fatalf("table %d CSV line %q does not parse: %v", bi, line, err)
					}
					records = append(records, rec)
				}
				tab := d.Tables[bi]
				if len(records) != len(tab.Rows)+1 {
					t.Fatalf("table %q: %d records, want header + %d rows",
						tab.Title, len(records), len(tab.Rows))
				}
				for _, rec := range records {
					if len(rec) != len(tab.Columns) {
						t.Errorf("table %q: record width %d != %d columns",
							tab.Title, len(rec), len(tab.Columns))
					}
				}
			}
		})
	}
}

// TestDatasetMeta spot-checks the per-experiment metadata the serving layer
// exposes: Fig 7 carries its TDP and PDN plotting order.
func TestDatasetMeta(t *testing.T) {
	d, err := Dataset("fig7", env(t))
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta["tdp"] != "4" {
		t.Errorf("fig7 meta tdp = %q, want 4", d.Meta["tdp"])
	}
	if d.Meta["pdns"] != "IVR,MBVR,LDO,I+MBVR,FlexWatts" {
		t.Errorf("fig7 meta pdns = %q", d.Meta["pdns"])
	}
}
