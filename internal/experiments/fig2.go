package experiments

import (
	"repro/flexwatts/report"
	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/perf"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

func init() {
	register("fig2a", Fig2a)
	register("fig2b", Fig2b)
}

// Fig2a regenerates Fig 2(a): the additional power budget (mW) required to
// raise the CPU or GFX clock by 1 % at each TDP design point — small at low
// TDP (~tens of mW), hundreds of mW at 50 W, which is why PDN efficiency
// matters most for low-TDP parts.
func Fig2a(e *Env) (*report.Dataset, error) {
	tdps := workload.StandardTDPs()
	type cell struct{ cpu, gfx units.Watt }
	cells, err := sweep.Map(e.Workers, len(tdps), func(i int) (cell, error) {
		return cell{
			cpu: perf.Sensitivity(e.Platform, tdps[i], domain.Core0, 0.56),
			gfx: perf.Sensitivity(e.Platform, tdps[i], domain.GFX, 0.56),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	d := report.NewDataset("Fig 2(a): power-budget increase for 1% frequency increase").
		SetMeta("tdps", floatsMeta(tdps)).
		SetMeta("unit", "mW")
	t := d.Table("Fig 2(a): power-budget increase for 1% frequency increase (mW)",
		"TDP", "CPU", "GFX")
	for i, tdp := range tdps {
		t.AddRow(tdpCell(tdp),
			report.Num(cells[i].cpu/units.Milli, "%.4g"),
			report.Num(cells[i].gfx/units.Milli, "%.4g"))
	}
	return d, nil
}

// Fig2b regenerates Fig 2(b): the percentage of the TDP power budget going
// to SA+IO, CPU cores, LLC, and PDN loss for a CPU-intensive workload,
// using at each TDP the commonly-used PDN with the highest loss (IVR at low
// TDP, MBVR at high TDP), as the paper does.
//
// The TDP axis is a rectangular grid (same scenario evaluated under three
// PDNs), so the driver goes through the batch path: one EvalGrid per kind
// instead of 3×len(tdps) per-point Eval calls. The kernel's bitwise
// contract keeps the rendered dataset — and the golden file — identical.
func Fig2b(e *Env) (*report.Dataset, error) {
	const ar = 0.56
	tdps := workload.StandardTDPs()
	g := pdn.NewGrid(len(tdps))
	for _, tdp := range tdps {
		s, err := workload.TDPScenario(e.Platform, tdp, workload.MultiThread, ar)
		if err != nil {
			return nil, err
		}
		g.Append(s)
	}
	kinds := []pdn.Kind{pdn.IVR, pdn.MBVR, pdn.LDO}
	perKind := make([][]pdn.Result, len(kinds))
	for ki, k := range kinds {
		perKind[ki] = make([]pdn.Result, g.Len())
		if err := e.EvalGrid(k, g, perKind[ki]); err != nil {
			return nil, err
		}
	}
	type cell struct {
		worstKind        pdn.Kind
		worst            pdn.Result
		cores, llc, saio units.Watt
	}
	cells := make([]cell, len(tdps))
	for i := range tdps {
		s := g.At(i)
		var c cell
		// Find the worst of the three commonly-used PDNs.
		for ki, k := range kinds {
			r := perKind[ki][i]
			if c.worst.PIn == 0 || r.PIn > c.worst.PIn {
				c.worst, c.worstKind = r, k
			}
		}
		c.cores = s.LoadFor(domain.Core0).PNom + s.LoadFor(domain.Core1).PNom
		c.llc = s.LoadFor(domain.LLC).PNom
		c.saio = s.LoadFor(domain.SA).PNom + s.LoadFor(domain.IO).PNom
		cells[i] = c
	}
	d := report.NewDataset("Fig 2(b): power-budget breakdown").
		SetMeta("tdps", floatsMeta(tdps)).
		SetMeta("ar", "0.56").
		SetMeta("pdns", kindsMeta(validatedPDNs))
	t := d.Table("Fig 2(b): power-budget breakdown, CPU-intensive workload, worst PDN per TDP",
		"TDP", "WorstPDN", "SA+IO", "CPU", "LLC", "PDNLoss")
	for i, tdp := range tdps {
		c := cells[i]
		loss := c.worst.PIn - c.worst.PNomTotal
		t.AddRow(tdpCell(tdp), report.Str(c.worstKind.String()),
			report.Pct(c.saio/c.worst.PIn), report.Pct(c.cores/c.worst.PIn),
			report.Pct(c.llc/c.worst.PIn), report.Pct(loss/c.worst.PIn))
	}
	return d, nil
}
