package experiments

import (
	"io"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/perf"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

func init() {
	register("fig2a", Fig2a)
	register("fig2b", Fig2b)
}

// Fig2a regenerates Fig 2(a): the additional power budget (mW) required to
// raise the CPU or GFX clock by 1 % at each TDP design point — small at low
// TDP (~tens of mW), hundreds of mW at 50 W, which is why PDN efficiency
// matters most for low-TDP parts.
func Fig2a(e *Env, w io.Writer) error {
	t := report.NewTable("Fig 2(a): power-budget increase for 1% frequency increase (mW)",
		"TDP", "CPU", "GFX")
	for _, tdp := range workload.StandardTDPs() {
		cpu := perf.Sensitivity(e.Platform, tdp, domain.Core0, 0.56)
		gfx := perf.Sensitivity(e.Platform, tdp, domain.GFX, 0.56)
		t.AddRowF(fmtTDP(tdp), cpu/units.Milli, gfx/units.Milli)
	}
	return t.WriteASCII(w)
}

// Fig2b regenerates Fig 2(b): the percentage of the TDP power budget going
// to SA+IO, CPU cores, LLC, and PDN loss for a CPU-intensive workload,
// using at each TDP the commonly-used PDN with the highest loss (IVR at low
// TDP, MBVR at high TDP), as the paper does.
func Fig2b(e *Env, w io.Writer) error {
	t := report.NewTable("Fig 2(b): power-budget breakdown, CPU-intensive workload, worst PDN per TDP",
		"TDP", "WorstPDN", "SA+IO", "CPU", "LLC", "PDNLoss")
	const ar = 0.56
	for _, tdp := range workload.StandardTDPs() {
		s, err := workload.TDPScenario(e.Platform, tdp, workload.MultiThread, ar)
		if err != nil {
			return err
		}
		// Find the worst of the three commonly-used PDNs.
		var worst pdn.Result
		var worstKind pdn.Kind
		for _, k := range []pdn.Kind{pdn.IVR, pdn.MBVR, pdn.LDO} {
			r, err := e.Baselines[k].Evaluate(s)
			if err != nil {
				return err
			}
			if worst.PIn == 0 || r.PIn > worst.PIn {
				worst, worstKind = r, k
			}
		}
		cores := s.LoadFor(domain.Core0).PNom + s.LoadFor(domain.Core1).PNom
		llc := s.LoadFor(domain.LLC).PNom
		saio := s.LoadFor(domain.SA).PNom + s.LoadFor(domain.IO).PNom
		loss := worst.PIn - worst.PNomTotal
		t.AddRow(fmtTDP(tdp), worstKind.String(),
			report.Pct(saio/worst.PIn), report.Pct(cores/worst.PIn),
			report.Pct(llc/worst.PIn), report.Pct(loss/worst.PIn))
	}
	return t.WriteASCII(w)
}
