package experiments

import (
	"fmt"
	"io"

	"repro/internal/pdn"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func init() { register("fig5", Fig5) }

// Fig5 regenerates Fig 5: the breakdown of PDN power-conversion loss for
// the three commonly-used PDNs running a CPU-intensive workload (AR = 56 %)
// at 4, 18 and 50 W TDP, as percentages of total input power, plus the
// normalized (to IVR) chip input current and compute load-line impedance
// line plots. The (PDN, TDP) grid runs on the sweep engine; the shared IVR
// reference evaluations dedupe through the env cache.
func Fig5(e *Env, w io.Writer) error {
	const ar = 0.56
	tdps := []float64{4, 18, 50}
	rows, err := sweep.Map(e.Workers, len(validatedPDNs)*len(tdps), func(i int) ([]string, error) {
		k := validatedPDNs[i/len(tdps)]
		tdp := tdps[i%len(tdps)]
		s, err := workload.TDPScenario(e.Platform, tdp, workload.MultiThread, ar)
		if err != nil {
			return nil, err
		}
		r, err := e.Eval(k, s)
		if err != nil {
			return nil, err
		}
		ivrRes, err := e.Eval(pdn.IVR, s)
		if err != nil {
			return nil, err
		}
		b := r.Breakdown
		vrLoss := b.OnChipVR + b.OffChipVR
		others := b.Guardband + b.PowerGate
		return []string{k.String(), fmtTDP(tdp),
			report.Pct(vrLoss / r.PIn),
			report.Pct(b.CondCompute / r.PIn),
			report.Pct(b.CondUncore / r.PIn),
			report.Pct(others / r.PIn),
			report.Pct((r.PIn - r.PNomTotal) / r.PIn),
			fmt.Sprintf("%.2fx", r.ChipInputCurrent/ivrRes.ChipInputCurrent),
			fmt.Sprintf("%.2fx", r.ComputeRailR/ivrRes.ComputeRailR)}, nil
	})
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 5: PDN loss breakdown, CPU-intensive (AR=56%)",
		"PDN", "TDP", "VR ineff", "I2R core+GFX", "I2R SA+IO", "Others", "TotalLoss", "I_norm", "RLL_norm")
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t.WriteASCII(w)
}

// fmtTDP renders a TDP value without trailing zeros.
func fmtTDP(tdp float64) string { return fmt.Sprintf("%g", tdp) }
