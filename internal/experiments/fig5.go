package experiments

import (
	"fmt"

	"repro/flexwatts/report"
	"repro/internal/pdn"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func init() { register("fig5", Fig5) }

// Fig5 regenerates Fig 5: the breakdown of PDN power-conversion loss for
// the three commonly-used PDNs running a CPU-intensive workload (AR = 56 %)
// at 4, 18 and 50 W TDP, as percentages of total input power, plus the
// normalized (to IVR) chip input current and compute load-line impedance
// line plots. The (PDN, TDP) grid runs on the sweep engine; the shared IVR
// reference evaluations dedupe through the env cache.
func Fig5(e *Env) (*report.Dataset, error) {
	const ar = 0.56
	tdps := []float64{4, 18, 50}
	rows, err := sweep.Map(e.Workers, len(validatedPDNs)*len(tdps), func(i int) ([]report.Cell, error) {
		k := validatedPDNs[i/len(tdps)]
		tdp := tdps[i%len(tdps)]
		s, err := workload.TDPScenario(e.Platform, tdp, workload.MultiThread, ar)
		if err != nil {
			return nil, err
		}
		r, err := e.Eval(k, s)
		if err != nil {
			return nil, err
		}
		ivrRes, err := e.Eval(pdn.IVR, s)
		if err != nil {
			return nil, err
		}
		b := r.Breakdown
		vrLoss := b.OnChipVR + b.OffChipVR
		others := b.Guardband + b.PowerGate
		return []report.Cell{report.Str(k.String()), tdpCell(tdp),
			report.Pct(vrLoss / r.PIn),
			report.Pct(b.CondCompute / r.PIn),
			report.Pct(b.CondUncore / r.PIn),
			report.Pct(others / r.PIn),
			report.Pct((r.PIn - r.PNomTotal) / r.PIn),
			report.Num(r.ChipInputCurrent/ivrRes.ChipInputCurrent, "%.2fx"),
			report.Num(r.ComputeRailR/ivrRes.ComputeRailR, "%.2fx")}, nil
	})
	if err != nil {
		return nil, err
	}
	d := report.NewDataset("Fig 5: PDN loss breakdown").
		SetMeta("ar", "0.56").
		SetMeta("tdps", floatsMeta(tdps)).
		SetMeta("pdns", kindsMeta(validatedPDNs))
	t := d.Table("Fig 5: PDN loss breakdown, CPU-intensive (AR=56%)",
		"PDN", "TDP", "VR ineff", "I2R core+GFX", "I2R SA+IO", "Others", "TotalLoss", "I_norm", "RLL_norm")
	for _, row := range rows {
		t.AddRow(row...)
	}
	return d, nil
}

// fmtTDP renders a TDP value without trailing zeros.
func fmtTDP(tdp float64) string { return fmt.Sprintf("%g", tdp) }

// tdpCell renders a TDP design point as a typed numeric cell.
func tdpCell(tdp float64) report.Cell { return report.Num(tdp, "%g") }
