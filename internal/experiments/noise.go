package experiments

import (
	"repro/flexwatts/report"
	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

func init() { register("noise", Noise) }

// Noise regenerates the §6 voltage-noise argument for the C6-based mode
// switch flow: the worst-case compute-rail droop if the hybrid PDN switched
// modes live under load, versus through package C6, across TDPs. A droop
// beyond the tolerance band is a voltage emergency. The (TDP, workload)
// grid runs on the sweep engine.
func Noise(e *Env) (*report.Dataset, error) {
	p := core.DefaultNoiseParams()
	tdps := []float64{4, 18, 50}
	wts := workload.Types()
	rows, err := sweep.Map(e.Workers, len(tdps)*len(wts), func(i int) ([]report.Cell, error) {
		tdp := tdps[i/len(wts)]
		wt := wts[i%len(wts)]
		s, err := workload.TDPScenario(e.Platform, tdp, wt, 0.6)
		if err != nil {
			return nil, err
		}
		live := core.ModeSwitchNoise(s, p, false)
		parked := core.ModeSwitchNoise(s, p, true)
		return []report.Cell{tdpCell(tdp), report.Str(wt.String()),
			report.NumText(live.Excursion, units.FormatVolt(live.Excursion)),
			report.Str(boolCell(live.Emergency)),
			report.NumText(parked.Excursion, units.FormatVolt(parked.Excursion)),
			report.Str(boolCell(parked.Emergency))}, nil
	})
	if err != nil {
		return nil, err
	}
	d := report.NewDataset("§6: mode-switch voltage droop").
		SetMeta("tdps", floatsMeta(tdps)).
		SetMeta("tolerance", units.FormatVolt(p.Tolerance))
	t := d.Table("§6: mode-switch voltage droop (tolerance band "+
		units.FormatVolt(p.Tolerance)+")",
		"TDP", "Workload", "live droop", "live emergency", "C6 droop", "C6 emergency")
	for _, row := range rows {
		t.AddRow(row...)
	}
	return d, nil
}

func boolCell(b bool) string {
	if b {
		return "YES"
	}
	return "no"
}
