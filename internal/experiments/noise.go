package experiments

import (
	"io"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

func init() { register("noise", Noise) }

// Noise regenerates the §6 voltage-noise argument for the C6-based mode
// switch flow: the worst-case compute-rail droop if the hybrid PDN switched
// modes live under load, versus through package C6, across TDPs. A droop
// beyond the tolerance band is a voltage emergency. The (TDP, workload)
// grid runs on the sweep engine.
func Noise(e *Env, w io.Writer) error {
	p := core.DefaultNoiseParams()
	tdps := []float64{4, 18, 50}
	wts := workload.Types()
	rows, err := sweep.Map(e.Workers, len(tdps)*len(wts), func(i int) ([]string, error) {
		tdp := tdps[i/len(wts)]
		wt := wts[i%len(wts)]
		s, err := workload.TDPScenario(e.Platform, tdp, wt, 0.6)
		if err != nil {
			return nil, err
		}
		live := core.ModeSwitchNoise(s, p, false)
		parked := core.ModeSwitchNoise(s, p, true)
		return []string{fmtTDP(tdp), wt.String(),
			units.FormatVolt(live.Excursion), boolCell(live.Emergency),
			units.FormatVolt(parked.Excursion), boolCell(parked.Emergency)}, nil
	})
	if err != nil {
		return err
	}
	t := report.NewTable("§6: mode-switch voltage droop (tolerance band "+
		units.FormatVolt(p.Tolerance)+")",
		"TDP", "Workload", "live droop", "live emergency", "C6 droop", "C6 emergency")
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t.WriteASCII(w)
}

func boolCell(b bool) string {
	if b {
		return "YES"
	}
	return "no"
}
