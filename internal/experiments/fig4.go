package experiments

import (
	"fmt"

	"repro/flexwatts/report"
	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/refmodel"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func init() {
	register("fig4", Fig4)
	register("fig4j", Fig4j)
}

// validatedPDNs are the three commonly-used PDNs the paper validates.
var validatedPDNs = []pdn.Kind{pdn.IVR, pdn.MBVR, pdn.LDO}

// Fig4 regenerates Fig 4(a–i): PDNspot-predicted versus reference-measured
// ETEE for single-threaded, multi-threaded and graphics workloads at 4, 18
// and 50 W TDP across the 40–80 % AR range, plus the per-model validation
// accuracy summary (§4.3 reports 99.1/99.4/99.2 % average accuracy). The
// dataset carries one table per (workload, TDP) panel and a final summary
// table.
//
// The (workload, TDP, AR) grid runs on the sweep engine — the reference
// simulator dominates the cost and every cell is independent (each derives
// its RNG seed from its grid index). Accuracy statistics accumulate
// serially over the collected cells in grid order, so the summary is
// identical to the serial path.
func Fig4(e *Env) (*report.Dataset, error) {
	wts := workload.Types()
	tdps := []float64{4, 18, 50}
	ars := []float64{0.40, 0.50, 0.60, 0.70, 0.80}

	type cell struct {
		row  []report.Cell
		accs [3]float64 // per validated PDN, this cell's validation accuracy
	}
	n := len(wts) * len(tdps) * len(ars)
	cells, err := sweep.Map(e.Workers, n, func(i int) (cell, error) {
		wt := wts[i/(len(tdps)*len(ars))]
		tdp := tdps[(i/len(ars))%len(tdps)]
		ar := ars[i%len(ars)]
		s, err := workload.TDPScenario(e.Platform, tdp, wt, ar)
		if err != nil {
			return cell{}, err
		}
		c := cell{row: []report.Cell{report.Pct(ar)}}
		for ki, k := range validatedPDNs {
			pred, err := e.Eval(k, s)
			if err != nil {
				return cell{}, err
			}
			cfg := refmodel.DefaultConfig()
			cfg.Seed = int64(i) + 7
			// Measure perturbs the scenario every step; give it the raw
			// model so one-off snapshots stay out of the cache.
			meas, err := refmodel.Measure(e.Baselines[k], s, cfg)
			if err != nil {
				return cell{}, err
			}
			c.accs[ki] = refmodel.Accuracy(pred.ETEE, meas.ETEE)
			c.row = append(c.row, report.Pct(pred.ETEE), report.Pct(meas.ETEE))
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}

	d := report.NewDataset("Fig 4: predicted vs measured ETEE validation").
		SetMeta("tdps", floatsMeta(tdps)).
		SetMeta("ars", floatsMeta(ars)).
		SetMeta("pdns", kindsMeta(validatedPDNs))
	accSum := map[pdn.Kind]float64{}
	accMin := map[pdn.Kind]float64{}
	accMax := map[pdn.Kind]float64{}
	i := 0
	for _, wt := range wts {
		for _, tdp := range tdps {
			t := d.Table(
				fmt.Sprintf("Fig 4: %s - %sW (predicted vs measured ETEE)", wt, fmtTDP(tdp)),
				"AR", "IVR pred", "IVR meas", "MBVR pred", "MBVR meas", "LDO pred", "LDO meas")
			for range ars {
				c := cells[i]
				for ki, k := range validatedPDNs {
					acc := c.accs[ki]
					accSum[k] += acc
					if accMin[k] == 0 || acc < accMin[k] {
						accMin[k] = acc
					}
					if acc > accMax[k] {
						accMax[k] = acc
					}
				}
				t.AddRow(c.row...)
				i++
			}
		}
	}

	sum := d.Table("Fig 4 validation accuracy summary",
		"PDN", "avg", "min", "max")
	for _, k := range validatedPDNs {
		sum.AddRow(report.Str(k.String()), report.Pct(accSum[k]/float64(n)),
			report.Pct(accMin[k]), report.Pct(accMax[k]))
	}
	return d, nil
}

// Fig4j regenerates Fig 4(j): ETEE of the three PDNs in the battery-life
// power states (C0MIN and package C2/C3/C6/C7/C8).
func Fig4j(e *Env) (*report.Dataset, error) {
	states := append([]domain.CState{domain.C0MIN}, domain.IdleCStates()...)
	rows, err := sweep.Map(e.Workers, len(states), func(i int) ([]report.Cell, error) {
		c := states[i]
		s := workload.CStateScenario(e.Platform, c)
		row := []report.Cell{report.Str(c.String())}
		for _, k := range validatedPDNs {
			r, err := e.Eval(k, s)
			if err != nil {
				return nil, err
			}
			row = append(row, report.Pct(r.ETEE))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	d := report.NewDataset("Fig 4(j): ETEE in battery-life power states").
		SetMeta("pdns", kindsMeta(validatedPDNs))
	t := d.Table("Fig 4(j): ETEE in battery-life power states",
		"State", "IVR", "MBVR", "LDO")
	for _, row := range rows {
		t.AddRow(row...)
	}
	return d, nil
}
