package experiments

import (
	"fmt"
	"io"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/refmodel"
	"repro/internal/report"
	"repro/internal/workload"
)

func init() {
	register("fig4", Fig4)
	register("fig4j", Fig4j)
}

// validatedPDNs are the three commonly-used PDNs the paper validates.
var validatedPDNs = []pdn.Kind{pdn.IVR, pdn.MBVR, pdn.LDO}

// Fig4 regenerates Fig 4(a–i): PDNspot-predicted versus reference-measured
// ETEE for single-threaded, multi-threaded and graphics workloads at 4, 18
// and 50 W TDP across the 40–80 % AR range, plus the per-model validation
// accuracy summary (§4.3 reports 99.1/99.4/99.2 % average accuracy).
func Fig4(e *Env, w io.Writer) error {
	tdps := []float64{4, 18, 50}
	ars := []float64{0.40, 0.50, 0.60, 0.70, 0.80}

	accSum := map[pdn.Kind]float64{}
	accMin := map[pdn.Kind]float64{}
	accMax := map[pdn.Kind]float64{}
	count := 0

	for _, wt := range workload.Types() {
		for _, tdp := range tdps {
			t := report.NewTable(
				fmt.Sprintf("Fig 4: %s - %sW (predicted vs measured ETEE)", wt, fmtTDP(tdp)),
				"AR", "IVR pred", "IVR meas", "MBVR pred", "MBVR meas", "LDO pred", "LDO meas")
			for _, ar := range ars {
				s, err := workload.TDPScenario(e.Platform, tdp, wt, ar)
				if err != nil {
					return err
				}
				row := []string{report.Pct(ar)}
				for _, k := range validatedPDNs {
					m := e.Baselines[k]
					pred, err := m.Evaluate(s)
					if err != nil {
						return err
					}
					cfg := refmodel.DefaultConfig()
					cfg.Seed = int64(count) + 7
					meas, err := refmodel.Measure(m, s, cfg)
					if err != nil {
						return err
					}
					acc := refmodel.Accuracy(pred.ETEE, meas.ETEE)
					accSum[k] += acc
					if accMin[k] == 0 || acc < accMin[k] {
						accMin[k] = acc
					}
					if acc > accMax[k] {
						accMax[k] = acc
					}
					row = append(row, report.Pct(pred.ETEE), report.Pct(meas.ETEE))
				}
				count++
				t.AddRow(row...)
			}
			if err := t.WriteASCII(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}

	sum := report.NewTable("Fig 4 validation accuracy summary",
		"PDN", "avg", "min", "max")
	for _, k := range validatedPDNs {
		n := float64(count)
		sum.AddRow(k.String(), report.Pct(accSum[k]/n), report.Pct(accMin[k]), report.Pct(accMax[k]))
	}
	return sum.WriteASCII(w)
}

// Fig4j regenerates Fig 4(j): ETEE of the three PDNs in the battery-life
// power states (C0MIN and package C2/C3/C6/C7/C8).
func Fig4j(e *Env, w io.Writer) error {
	t := report.NewTable("Fig 4(j): ETEE in battery-life power states",
		"State", "IVR", "MBVR", "LDO")
	states := append([]domain.CState{domain.C0MIN}, domain.IdleCStates()...)
	for _, c := range states {
		s := workload.CStateScenario(e.Platform, c)
		row := []string{c.String()}
		for _, k := range validatedPDNs {
			r, err := e.Baselines[k].Evaluate(s)
			if err != nil {
				return err
			}
			row = append(row, report.Pct(r.ETEE))
		}
		t.AddRow(row...)
	}
	return t.WriteASCII(w)
}
