// Package experiments contains one driver per table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index). Each driver
// computes the same rows/series the paper reports and returns them as a
// typed report.Dataset, so the repository's cmd/flexwatts binary, the
// flexwattsd HTTP service and the bench harness can regenerate every
// artifact in any render format without re-evaluating.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"

	"repro/flexwatts/report"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/sweep"
)

// Env bundles the objects every experiment needs: the platform model, the
// PDNspot parameters, the four baseline PDNs, and FlexWatts with its
// predictor, plus the sweep engine settings the figure drivers execute on.
type Env struct {
	Platform  *domain.Platform
	Params    pdn.Params
	Baselines map[pdn.Kind]pdn.Model
	Flex      *core.Model
	Predictor *core.Predictor
	// Workers bounds how many sweep points the drivers evaluate
	// concurrently: 1 is fully serial, 0 (the default) sizes the pool by
	// GOMAXPROCS. Output is byte-identical either way — results are
	// collected by grid index before rendering.
	Workers int
	// Cache memoizes baseline PDN evaluations, so scenario cells shared
	// between figures (the same TDP grids recur everywhere) evaluate once
	// per Env.
	Cache *sweep.Cache
}

// NewEnv constructs the default evaluation environment.
func NewEnv() (*Env, error) {
	plat := domain.NewClientPlatform()
	params := pdn.DefaultParams()
	baselines := make(map[pdn.Kind]pdn.Model, 4)
	for _, k := range pdn.Kinds() {
		m, err := pdn.New(k, params)
		if err != nil {
			return nil, err
		}
		baselines[k] = m
	}
	flex := core.NewModel(params)
	pred, err := core.NewPredictor(plat, flex, core.DefaultPredictorConfig())
	if err != nil {
		return nil, err
	}
	return &Env{
		Platform:  plat,
		Params:    params,
		Baselines: baselines,
		Flex:      flex,
		Predictor: pred,
		Cache:     sweep.NewCache(),
	}, nil
}

// CacheVersion fingerprints everything a cached baseline evaluation
// depends on: the full PDNspot parameter set, rendered field by field.
// The persistent cache tier folds this string into its segment headers, so
// any parameter change — a retuned rail resistance, a new efficiency curve
// point — invalidates every on-disk record written under the old model;
// stale state cannot resurrect into a fresh process.
func (e *Env) CacheVersion() string {
	return fmt.Sprintf("%#v", e.Params)
}

// Eval evaluates baseline k on s through the env's memoizing cache.
func (e *Env) Eval(k pdn.Kind, s pdn.Scenario) (pdn.Result, error) {
	return e.Cache.Evaluate(e.Baselines[k], s)
}

// EvalGrid evaluates baseline k on every grid point into out[:g.Len()],
// through the same memoizing cache as Eval — same keys, same accounting —
// with cache misses resolved by the batch kernel and chunks spread over the
// env's worker pool. The kernel is bitwise identical to Evaluate, so a
// driver converted from per-point Eval to EvalGrid renders byte-identical
// datasets and shares cache entries with drivers that were not.
func (e *Env) EvalGrid(k pdn.Kind, g *pdn.Grid, out []pdn.Result) error {
	return sweep.GridMapCtx(context.Background(), e.Workers, e.Cache, e.Baselines[k], g, out, 0)
}

// Model returns baseline k wrapped in the env's memoizing cache, for
// callers that consume a pdn.Model (perf.Evaluator, battery-life drivers).
func (e *Env) Model(k pdn.Kind) pdn.Model {
	return sweep.Cached(e.Baselines[k], e.Cache)
}

// AllModels returns the five PDNs in plotting order, with FlexWatts wrapped
// in its Algorithm 1 auto-mode adapter for the given TDP. The baselines are
// cache-wrapped; the auto-model is not (its result depends on the TDP, not
// just the scenario).
func (e *Env) AllModels(tdp float64) []pdn.Model {
	return []pdn.Model{
		e.Model(pdn.IVR),
		e.Model(pdn.MBVR),
		e.Model(pdn.LDO),
		e.Model(pdn.IMBVR),
		core.NewAutoModel(e.Flex, e.Predictor, tdp),
	}
}

// Runner is an experiment entry point: it evaluates the experiment's grid
// and returns the results as a typed dataset. Rendering is the caller's
// choice (report.Format).
type Runner func(e *Env) (*report.Dataset, error)

// registry maps experiment ids to runners; populated by init() calls in
// the per-figure files.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// Dataset executes the experiment with the given id and returns its typed
// result, with the dataset's ID stamped to the registry key.
func Dataset(id string, e *Env) (*report.Dataset, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	d, err := r(e)
	if err != nil {
		return nil, err
	}
	d.ID = id
	return d, nil
}

// Run executes the experiment with the given id and renders it as ASCII,
// the historical driver behavior (golden files are captured in this form).
func Run(id string, e *Env, w io.Writer) error {
	d, err := Dataset(id, e)
	if err != nil {
		return err
	}
	return d.WriteASCII(w)
}

// Known reports whether id names a registered experiment.
func Known(id string) bool {
	_, ok := registry[id]
	return ok
}

// IDs lists the registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Datasets executes every registered experiment through the sweep engine
// and returns the typed results in id order.
//
// The env's worker budget is split between the two sweep levels — a few
// experiments in flight, each granted its share of the pool for its own
// grid — so nested sweeps never multiply into workers² goroutines.
func Datasets(e *Env) ([]*report.Dataset, error) {
	ids := IDs()
	budget := e.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	outer := budget
	if outer > 4 {
		outer = 4
	}
	inner := *e
	inner.Workers = (budget + outer - 1) / outer
	return sweep.Map(outer, len(ids), func(i int) (*report.Dataset, error) {
		d, err := Dataset(ids[i], &inner)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ids[i], err)
		}
		return d, nil
	})
}

// RunAll executes every registered experiment and renders the results to w
// in id order, each followed by a blank line, so the output is byte-for-byte
// the same whether the registry ran serially or concurrently.
func RunAll(e *Env, w io.Writer) error {
	ds, err := Datasets(e)
	if err != nil {
		return err
	}
	for _, d := range ds {
		if err := d.WriteASCII(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// kindsMeta renders a PDN order list for dataset metadata.
func kindsMeta(ks []pdn.Kind) string {
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.String()
	}
	return strings.Join(names, ",")
}

// floatsMeta renders a numeric grid axis for dataset metadata.
func floatsMeta(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return strings.Join(parts, ",")
}
