// Package experiments contains one driver per table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index). Each driver
// renders the same rows/series the paper reports, so the repository's
// cmd/flexwatts binary and bench harness can regenerate every artifact.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/pdn"
)

// Env bundles the objects every experiment needs: the platform model, the
// PDNspot parameters, the four baseline PDNs, and FlexWatts with its
// predictor.
type Env struct {
	Platform  *domain.Platform
	Params    pdn.Params
	Baselines map[pdn.Kind]pdn.Model
	Flex      *core.Model
	Predictor *core.Predictor
}

// NewEnv constructs the default evaluation environment.
func NewEnv() (*Env, error) {
	plat := domain.NewClientPlatform()
	params := pdn.DefaultParams()
	baselines := make(map[pdn.Kind]pdn.Model, 4)
	for _, k := range pdn.Kinds() {
		m, err := pdn.New(k, params)
		if err != nil {
			return nil, err
		}
		baselines[k] = m
	}
	flex := core.NewModel(params)
	pred, err := core.NewPredictor(plat, flex, core.DefaultPredictorConfig())
	if err != nil {
		return nil, err
	}
	return &Env{
		Platform:  plat,
		Params:    params,
		Baselines: baselines,
		Flex:      flex,
		Predictor: pred,
	}, nil
}

// AllModels returns the five PDNs in plotting order, with FlexWatts wrapped
// in its Algorithm 1 auto-mode adapter for the given TDP.
func (e *Env) AllModels(tdp float64) []pdn.Model {
	return []pdn.Model{
		e.Baselines[pdn.IVR],
		e.Baselines[pdn.MBVR],
		e.Baselines[pdn.LDO],
		e.Baselines[pdn.IMBVR],
		core.NewAutoModel(e.Flex, e.Predictor, tdp),
	}
}

// Runner is an experiment entry point.
type Runner func(e *Env, w io.Writer) error

// registry maps experiment ids to runners; populated by init() calls in
// the per-figure files.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// Run executes the experiment with the given id.
func Run(id string, e *Env, w io.Writer) error {
	r, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(e, w)
}

// IDs lists the registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
