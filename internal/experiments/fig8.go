package experiments

import (
	"repro/flexwatts/report"
	"repro/internal/cost"
	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/perf"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func init() {
	register("fig8a", Fig8a)
	register("fig8b", Fig8b)
	register("fig8c", Fig8c)
	register("fig8d", Fig8d)
	register("fig8e", Fig8e)
}

// suiteVsTDP builds average suite performance (normalized to IVR) against
// TDP for the five PDNs, one sweep cell per TDP design point.
func suiteVsTDP(e *Env, title string, suite workload.Suite) (*report.Dataset, error) {
	ev := perf.NewEvaluator(e.Platform, e.Model(pdn.IVR))
	tdps := workload.StandardTDPs()
	rows, err := sweep.Map(e.Workers, len(tdps), func(i int) ([]report.Cell, error) {
		tdp := tdps[i]
		candidates := e.AllModels(tdp)[1:]
		avg, err := ev.SuiteAverage(tdp, suite, candidates)
		if err != nil {
			return nil, err
		}
		row := []report.Cell{tdpCell(tdp)}
		for _, k := range perfOrder {
			row = append(row, report.Pct(avg[k]))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	d := report.NewDataset(title).
		SetMeta("suite", suite.Name).
		SetMeta("tdps", floatsMeta(tdps)).
		SetMeta("pdns", kindsMeta(perfOrder))
	t := d.Table(title, "TDP", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")
	for _, row := range rows {
		t.AddRow(row...)
	}
	return d, nil
}

// Fig8a regenerates Fig 8(a): SPEC CPU2006 average performance vs TDP.
func Fig8a(e *Env) (*report.Dataset, error) {
	return suiteVsTDP(e, "Fig 8(a): SPEC CPU2006 average performance vs TDP (normalized to IVR)",
		workload.SPECCPU2006())
}

// Fig8b regenerates Fig 8(b): 3DMark06 average performance vs TDP.
func Fig8b(e *Env) (*report.Dataset, error) {
	return suiteVsTDP(e, "Fig 8(b): 3DMark06 average performance vs TDP (normalized to IVR)",
		workload.ThreeDMark06())
}

// Fig8c regenerates Fig 8(c): battery-life workload average power for the
// five PDNs, normalized to IVR (lower is better). The §5 formula weights
// each package state's power by residency and ETEE; FlexWatts runs
// LDO-Mode in these states (predicted by Algorithm 1). Each workload is one
// sweep cell; the C-state scenarios they share dedupe through the env
// cache.
func Fig8c(e *Env) (*report.Dataset, error) {
	bws := workload.BatteryLifeWorkloads()
	rows, err := sweep.Map(e.Workers, len(bws), func(i int) ([]report.Cell, error) {
		bw := bws[i]
		etee := func(m pdn.Model) func(domain.CState) float64 {
			return func(c domain.CState) float64 {
				s := workload.CStateScenario(e.Platform, c)
				r, err := m.Evaluate(s)
				if err != nil {
					panic(err) // C-state scenarios are always valid
				}
				return r.ETEE
			}
		}
		base := bw.AveragePower(e.Platform, etee(e.Model(pdn.IVR)))
		row := []report.Cell{report.Str(bw.Name)}
		for _, k := range perfOrder {
			var m pdn.Model
			if k == pdn.FlexWatts {
				// Battery-life is TDP-independent (§7.1); use any TDP for
				// the auto-model — the predictor keys on power state here.
				m = e.AllModels(4)[4]
			} else {
				m = e.Model(k)
			}
			p := bw.AveragePower(e.Platform, etee(m))
			row = append(row, report.Pct(p/base))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	d := report.NewDataset("Fig 8(c): battery-life average power (normalized to IVR, lower is better)").
		SetMeta("pdns", kindsMeta(perfOrder))
	t := d.Table("Fig 8(c): battery-life average power (normalized to IVR, lower is better)",
		"Workload", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")
	for _, row := range rows {
		t.AddRow(row...)
	}
	return d, nil
}

// costVsTDP builds the sized BOM cost or board area versus TDP normalized
// to IVR, one sweep cell per TDP design point.
func costVsTDP(e *Env, title string, pick func(bom, area map[pdn.Kind]float64) map[pdn.Kind]float64) (*report.Dataset, error) {
	tdps := workload.StandardTDPs()
	rows, err := sweep.Map(e.Workers, len(tdps), func(i int) ([]report.Cell, error) {
		bom, area, err := cost.Normalized(e.Platform, tdps[i])
		if err != nil {
			return nil, err
		}
		vals := pick(bom, area)
		row := []report.Cell{tdpCell(tdps[i])}
		for _, k := range perfOrder {
			row = append(row, report.Num(vals[k], "%.2f"))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	d := report.NewDataset(title).
		SetMeta("tdps", floatsMeta(tdps)).
		SetMeta("pdns", kindsMeta(perfOrder))
	t := d.Table(title, "TDP", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")
	for _, row := range rows {
		t.AddRow(row...)
	}
	return d, nil
}

// Fig8d regenerates Fig 8(d): BOM cost vs TDP normalized to IVR.
func Fig8d(e *Env) (*report.Dataset, error) {
	return costVsTDP(e, "Fig 8(d): BOM cost (normalized to IVR)",
		func(bom, area map[pdn.Kind]float64) map[pdn.Kind]float64 { return bom })
}

// Fig8e regenerates Fig 8(e): board area vs TDP normalized to IVR.
func Fig8e(e *Env) (*report.Dataset, error) {
	return costVsTDP(e, "Fig 8(e): board area (normalized to IVR)",
		func(bom, area map[pdn.Kind]float64) map[pdn.Kind]float64 { return area })
}
