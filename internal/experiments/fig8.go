package experiments

import (
	"io"

	"repro/internal/cost"
	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/perf"
	"repro/internal/report"
	"repro/internal/workload"
)

func init() {
	register("fig8a", Fig8a)
	register("fig8b", Fig8b)
	register("fig8c", Fig8c)
	register("fig8d", Fig8d)
	register("fig8e", Fig8e)
}

// suiteVsTDP renders average suite performance (normalized to IVR) against
// TDP for the five PDNs.
func suiteVsTDP(e *Env, w io.Writer, title string, suite workload.Suite) error {
	t := report.NewTable(title, "TDP", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")
	ev := perf.NewEvaluator(e.Platform, e.Baselines[pdn.IVR])
	for _, tdp := range workload.StandardTDPs() {
		candidates := e.AllModels(tdp)[1:]
		avg, err := ev.SuiteAverage(tdp, suite, candidates)
		if err != nil {
			return err
		}
		row := []string{fmtTDP(tdp)}
		for _, k := range perfOrder {
			row = append(row, report.Pct(avg[k]))
		}
		t.AddRow(row...)
	}
	return t.WriteASCII(w)
}

// Fig8a regenerates Fig 8(a): SPEC CPU2006 average performance vs TDP.
func Fig8a(e *Env, w io.Writer) error {
	return suiteVsTDP(e, w, "Fig 8(a): SPEC CPU2006 average performance vs TDP (normalized to IVR)",
		workload.SPECCPU2006())
}

// Fig8b regenerates Fig 8(b): 3DMark06 average performance vs TDP.
func Fig8b(e *Env, w io.Writer) error {
	return suiteVsTDP(e, w, "Fig 8(b): 3DMark06 average performance vs TDP (normalized to IVR)",
		workload.ThreeDMark06())
}

// Fig8c regenerates Fig 8(c): battery-life workload average power for the
// five PDNs, normalized to IVR (lower is better). The §5 formula weights
// each package state's power by residency and ETEE; FlexWatts runs
// LDO-Mode in these states (predicted by Algorithm 1).
func Fig8c(e *Env, w io.Writer) error {
	t := report.NewTable("Fig 8(c): battery-life average power (normalized to IVR, lower is better)",
		"Workload", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")
	for _, bw := range workload.BatteryLifeWorkloads() {
		etee := func(m pdn.Model) func(domain.CState) float64 {
			return func(c domain.CState) float64 {
				s := workload.CStateScenario(e.Platform, c)
				r, err := m.Evaluate(s)
				if err != nil {
					panic(err) // C-state scenarios are always valid
				}
				return r.ETEE
			}
		}
		base := bw.AveragePower(e.Platform, etee(e.Baselines[pdn.IVR]))
		row := []string{bw.Name}
		for _, k := range perfOrder {
			var m pdn.Model
			if k == pdn.FlexWatts {
				// Battery-life is TDP-independent (§7.1); use any TDP for
				// the auto-model — the predictor keys on power state here.
				m = e.AllModels(4)[4]
			} else {
				m = e.Baselines[k]
			}
			p := bw.AveragePower(e.Platform, etee(m))
			row = append(row, report.Pct(p/base))
		}
		t.AddRow(row...)
	}
	return t.WriteASCII(w)
}

// Fig8d regenerates Fig 8(d): BOM cost vs TDP normalized to IVR.
func Fig8d(e *Env, w io.Writer) error {
	t := report.NewTable("Fig 8(d): BOM cost (normalized to IVR)",
		"TDP", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")
	for _, tdp := range workload.StandardTDPs() {
		bom, _, err := cost.Normalized(e.Platform, tdp)
		if err != nil {
			return err
		}
		row := []string{fmtTDP(tdp)}
		for _, k := range perfOrder {
			row = append(row, report.F2(bom[k]))
		}
		t.AddRow(row...)
	}
	return t.WriteASCII(w)
}

// Fig8e regenerates Fig 8(e): board area vs TDP normalized to IVR.
func Fig8e(e *Env, w io.Writer) error {
	t := report.NewTable("Fig 8(e): board area (normalized to IVR)",
		"TDP", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")
	for _, tdp := range workload.StandardTDPs() {
		_, area, err := cost.Normalized(e.Platform, tdp)
		if err != nil {
			return err
		}
		row := []string{fmtTDP(tdp)}
		for _, k := range perfOrder {
			row = append(row, report.F2(area[k]))
		}
		t.AddRow(row...)
	}
	return t.WriteASCII(w)
}
