package experiments

import (
	"io"

	"repro/internal/pdn"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func init() {
	register("obs", Observations)
	register("tab1", Table1)
	register("tab2", Table2)
}

// Observations regenerates the §5 crossover analysis: for each workload
// type and AR, the TDP at which the IVR PDN's ETEE overtakes MBVR's and
// LDO's (Observation 1 puts it between 4 W and 50 W; Observation 2 puts the
// graphics/LDO crossover around 21 W). Each (workload, AR) pair is one
// sweep cell scanning the TDP range; the IVR evaluations shared between the
// two comparisons dedupe through the env cache.
func Observations(e *Env, w io.Writer) error {
	wts := workload.Types()
	ars := []float64{0.4, 0.6, 0.8}
	rows, err := sweep.Map(e.Workers, len(wts)*len(ars), func(i int) ([]string, error) {
		wt := wts[i/len(ars)]
		ar := ars[i%len(ars)]
		row := []string{wt.String(), report.Pct(ar)}
		for _, other := range []pdn.Kind{pdn.MBVR, pdn.LDO} {
			row = append(row, crossover(e, wt, ar, other))
		}
		return row, nil
	})
	if err != nil {
		return err
	}
	t := report.NewTable("Observation 1/2: IVR ETEE crossover TDP (W)",
		"Workload", "AR", "vs MBVR", "vs LDO")
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t.WriteASCII(w)
}

// crossover scans the TDP range for the point where IVR's ETEE first
// exceeds the other PDN's.
func crossover(e *Env, wt workload.Type, ar float64, other pdn.Kind) string {
	prev := ""
	for tdp := 4.0; tdp <= 50.0; tdp += 1.0 {
		s, err := workload.TDPScenario(e.Platform, tdp, wt, ar)
		if err != nil {
			return "err"
		}
		ri, err := e.Eval(pdn.IVR, s)
		if err != nil {
			return "err"
		}
		ro, err := e.Eval(other, s)
		if err != nil {
			return "err"
		}
		if ri.ETEE >= ro.ETEE {
			if tdp == 4.0 {
				return "<4"
			}
			return fmtTDP(tdp)
		}
		prev = ">" + fmtTDP(tdp)
	}
	return prev
}

// Table1 dumps the modeled processor architecture (paper Table 1).
func Table1(e *Env, w io.Writer) error {
	t := report.NewTable("Table 1: processor architecture summary", "Domain", "Description")
	t.AddRow("Core 0/1", "shared clock domain, 0.8-4.0 GHz in 100 MHz steps")
	t.AddRow("GFX", "graphics engines, 0.1-1.2 GHz in 50 MHz steps")
	t.AddRow("LLC", "last-level cache, clocked with cores, 0.5-4 W")
	t.AddRow("SA", "system agent: memory/display controllers, fixed frequency")
	t.AddRow("IO", "DDR/display IO, fixed frequency")
	return t.WriteASCII(w)
}

// Table2 dumps the PDNspot model parameters (paper Table 2).
func Table2(e *Env, w io.Writer) error {
	p := e.Params
	t := report.NewTable("Table 2: main PDNspot parameters", "Parameter", "IVR", "MBVR", "LDO")
	t.AddRow("Load-line RLL (mOhm)",
		report.F2(p.IVRInLL*1e3)+" (IN)",
		report.F2(p.CoresLL*1e3)+"/"+report.F2(p.GfxLL*1e3)+"/"+report.F2(p.SALL*1e3)+"/"+report.F2(p.IOLL*1e3)+" (Cores/GFX/SA/IO)",
		report.F2(p.LDOInLL*1e3)+" (IN) "+report.F2(p.SALL*1e3)+"/"+report.F2(p.IOLL*1e3)+" (SA/IO)")
	t.AddRow("Tolerance band (mV)",
		report.F2(p.TOBIVR*1e3), report.F2(p.TOBMBVR*1e3), report.F2(p.TOBLDO*1e3))
	t.AddRow("PG impedance (mOhm)", report.F2(p.RPG*1e3), report.F2(p.RPG*1e3), report.F2(p.RPG*1e3))
	t.AddRow("PSU voltage (V)", report.F2(p.PSU), report.F2(p.PSU), report.F2(p.PSU))
	t.AddRow("V_IN level (V)", report.F2(p.VINLevel), "-", "max domain voltage")
	return t.WriteASCII(w)
}
