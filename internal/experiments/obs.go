package experiments

import (
	"repro/flexwatts/report"
	"repro/internal/pdn"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func init() {
	register("obs", Observations)
	register("tab1", Table1)
	register("tab2", Table2)
}

// Observations regenerates the §5 crossover analysis: for each workload
// type and AR, the TDP at which the IVR PDN's ETEE overtakes MBVR's and
// LDO's (Observation 1 puts it between 4 W and 50 W; Observation 2 puts the
// graphics/LDO crossover around 21 W). Each (workload, AR) pair is one
// sweep cell scanning the TDP range; the IVR evaluations shared between the
// two comparisons dedupe through the env cache.
func Observations(e *Env) (*report.Dataset, error) {
	wts := workload.Types()
	ars := []float64{0.4, 0.6, 0.8}
	rows, err := sweep.Map(e.Workers, len(wts)*len(ars), func(i int) ([]report.Cell, error) {
		wt := wts[i/len(ars)]
		ar := ars[i%len(ars)]
		row := []report.Cell{report.Str(wt.String()), report.Pct(ar)}
		for _, other := range []pdn.Kind{pdn.MBVR, pdn.LDO} {
			row = append(row, report.Str(crossover(e, wt, ar, other)))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	d := report.NewDataset("Observation 1/2: IVR ETEE crossover TDP").
		SetMeta("ars", floatsMeta(ars)).
		SetMeta("unit", "W")
	t := d.Table("Observation 1/2: IVR ETEE crossover TDP (W)",
		"Workload", "AR", "vs MBVR", "vs LDO")
	for _, row := range rows {
		t.AddRow(row...)
	}
	return d, nil
}

// crossover scans the TDP range for the point where IVR's ETEE first
// exceeds the other PDN's.
func crossover(e *Env, wt workload.Type, ar float64, other pdn.Kind) string {
	prev := ""
	for tdp := 4.0; tdp <= 50.0; tdp += 1.0 {
		s, err := workload.TDPScenario(e.Platform, tdp, wt, ar)
		if err != nil {
			return "err"
		}
		ri, err := e.Eval(pdn.IVR, s)
		if err != nil {
			return "err"
		}
		ro, err := e.Eval(other, s)
		if err != nil {
			return "err"
		}
		if ri.ETEE >= ro.ETEE {
			if tdp == 4.0 {
				return "<4"
			}
			return fmtTDP(tdp)
		}
		prev = ">" + fmtTDP(tdp)
	}
	return prev
}

// Table1 dumps the modeled processor architecture (paper Table 1).
func Table1(e *Env) (*report.Dataset, error) {
	d := report.NewDataset("Table 1: processor architecture summary")
	t := d.Table("Table 1: processor architecture summary", "Domain", "Description")
	t.AddRow(report.Str("Core 0/1"), report.Str("shared clock domain, 0.8-4.0 GHz in 100 MHz steps"))
	t.AddRow(report.Str("GFX"), report.Str("graphics engines, 0.1-1.2 GHz in 50 MHz steps"))
	t.AddRow(report.Str("LLC"), report.Str("last-level cache, clocked with cores, 0.5-4 W"))
	t.AddRow(report.Str("SA"), report.Str("system agent: memory/display controllers, fixed frequency"))
	t.AddRow(report.Str("IO"), report.Str("DDR/display IO, fixed frequency"))
	return d, nil
}

// Table2 dumps the PDNspot model parameters (paper Table 2).
func Table2(e *Env) (*report.Dataset, error) {
	p := e.Params
	d := report.NewDataset("Table 2: main PDNspot parameters").
		SetMeta("pdns", kindsMeta(validatedPDNs))
	t := d.Table("Table 2: main PDNspot parameters", "Parameter", "IVR", "MBVR", "LDO")
	t.AddRow(report.Str("Load-line RLL (mOhm)"),
		report.Str(report.F2(p.IVRInLL*1e3)+" (IN)"),
		report.Str(report.F2(p.CoresLL*1e3)+"/"+report.F2(p.GfxLL*1e3)+"/"+report.F2(p.SALL*1e3)+"/"+report.F2(p.IOLL*1e3)+" (Cores/GFX/SA/IO)"),
		report.Str(report.F2(p.LDOInLL*1e3)+" (IN) "+report.F2(p.SALL*1e3)+"/"+report.F2(p.IOLL*1e3)+" (SA/IO)"))
	t.AddRow(report.Str("Tolerance band (mV)"),
		report.Num(p.TOBIVR*1e3, "%.2f"), report.Num(p.TOBMBVR*1e3, "%.2f"), report.Num(p.TOBLDO*1e3, "%.2f"))
	t.AddRow(report.Str("PG impedance (mOhm)"),
		report.Num(p.RPG*1e3, "%.2f"), report.Num(p.RPG*1e3, "%.2f"), report.Num(p.RPG*1e3, "%.2f"))
	t.AddRow(report.Str("PSU voltage (V)"),
		report.Num(p.PSU, "%.2f"), report.Num(p.PSU, "%.2f"), report.Num(p.PSU, "%.2f"))
	t.AddRow(report.Str("V_IN level (V)"),
		report.Num(p.VINLevel, "%.2f"), report.Str("-"), report.Str("max domain voltage"))
	return d, nil
}
