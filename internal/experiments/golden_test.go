package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenOutputs pins every experiment's rendered bytes to the golden
// files under testdata. The evaluation pipeline is required to be bit-exact
// across refactors — sweep collects results by grid index, the scenario and
// cache representations are value types, and the refmodel RNG stream is
// seeded per grid cell — so any representation change that leaks into a
// rendered artifact is a bug this test catches. Regenerate intentionally
// with:
//
//	go run ./cmd/flexwatts -exp <id> > internal/experiments/testdata/<id>.golden
func TestGoldenOutputs(t *testing.T) {
	e := env(t)
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
			if err != nil {
				t.Fatalf("missing golden for %s (add it per the comment above): %v", id, err)
			}
			var buf bytes.Buffer
			if err := Run(id, e, &buf); err != nil {
				t.Fatal(err)
			}
			// cmd/flexwatts terminates each experiment with one newline; the
			// goldens were captured through it.
			buf.WriteByte('\n')
			if got := buf.Bytes(); !bytes.Equal(got, want) {
				t.Errorf("%s output differs from golden:\n%s", id, firstDiff(got, want))
			}
		})
	}
}

// TestGoldenFilesMatchRegistry fails when a golden file is orphaned or an
// experiment lacks one, so the testdata directory can't drift.
func TestGoldenFilesMatchRegistry(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	registered := map[string]bool{}
	for _, id := range IDs() {
		registered[id] = true
	}
	seen := map[string]bool{}
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, ".golden") {
			continue
		}
		id := strings.TrimSuffix(name, ".golden")
		seen[id] = true
		if !registered[id] {
			t.Errorf("testdata/%s has no registered experiment", name)
		}
	}
	for id := range registered {
		if !seen[id] {
			t.Errorf("experiment %s has no golden file", id)
		}
	}
}

// firstDiff renders the first line where got and want disagree.
func firstDiff(got, want []byte) string {
	gl := strings.Split(string(got), "\n")
	wl := strings.Split(string(want), "\n")
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if gl[i] != wl[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("line counts differ: got %d, want %d", len(gl), len(wl))
}
