package experiments

import (
	"repro/flexwatts/report"
	"repro/internal/pdn"
	"repro/internal/perf"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func init() { register("fig7", Fig7) }

// perfOrder is the PDN column order of Fig 7 / Fig 8(a,b).
var perfOrder = []pdn.Kind{pdn.IVR, pdn.MBVR, pdn.LDO, pdn.IMBVR, pdn.FlexWatts}

// Fig7 regenerates Fig 7: per-benchmark SPEC CPU2006 performance at 4 W TDP
// for the five PDNs, normalized to IVR, sorted ascending by each
// benchmark's performance scalability (the suite is already in that order).
// Each benchmark is one sweep cell; the Average row accumulates over the
// collected cells in suite order. The paper's headline: MBVR/LDO/FlexWatts
// average >22 % over IVR.
func Fig7(e *Env) (*report.Dataset, error) {
	const tdp = 4.0
	ev := perf.NewEvaluator(e.Platform, e.Model(pdn.IVR))
	candidates := e.AllModels(tdp)[1:] // all but the IVR baseline
	suite := workload.SPECCPU2006()

	type cell struct {
		row []report.Cell
		rel [5]float64 // Relative per PDN, in perfOrder
	}
	cells, err := sweep.Map(e.Workers, len(suite.Workloads), func(i int) (cell, error) {
		bench := suite.Workloads[i]
		res, err := ev.Compare(tdp, bench, candidates)
		if err != nil {
			return cell{}, err
		}
		c := cell{row: []report.Cell{report.Str(bench.Name), report.Num(bench.Scalability, "%.2f")}}
		for ki, k := range perfOrder {
			c.row = append(c.row, report.Pct(res[k].Relative))
			c.rel[ki] = res[k].Relative
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}

	d := report.NewDataset("Fig 7: SPEC CPU2006 normalized performance at 4W TDP").
		SetMeta("tdp", "4").
		SetMeta("suite", suite.Name).
		SetMeta("pdns", kindsMeta(perfOrder))
	t := d.Table("Fig 7: SPEC CPU2006 normalized performance at 4W TDP",
		"Benchmark", "Scal", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")
	sums := map[pdn.Kind]float64{}
	for _, c := range cells {
		for ki, k := range perfOrder {
			sums[k] += c.rel[ki]
		}
		t.AddRow(c.row...)
	}
	n := float64(len(suite.Workloads))
	avg := []report.Cell{report.Str("Average"), report.Num(suite.MeanScalability(), "%.2f")}
	for _, k := range perfOrder {
		avg = append(avg, report.Pct(sums[k]/n))
	}
	t.AddRow(avg...)
	return d, nil
}
