package experiments

import (
	"io"

	"repro/internal/pdn"
	"repro/internal/perf"
	"repro/internal/report"
	"repro/internal/workload"
)

func init() { register("fig7", Fig7) }

// perfOrder is the PDN column order of Fig 7 / Fig 8(a,b).
var perfOrder = []pdn.Kind{pdn.IVR, pdn.MBVR, pdn.LDO, pdn.IMBVR, pdn.FlexWatts}

// Fig7 regenerates Fig 7: per-benchmark SPEC CPU2006 performance at 4 W TDP
// for the five PDNs, normalized to IVR, sorted ascending by each
// benchmark's performance scalability (the suite is already in that order).
// The paper's headline: MBVR/LDO/FlexWatts average >22 % over IVR.
func Fig7(e *Env, w io.Writer) error {
	const tdp = 4.0
	ev := perf.NewEvaluator(e.Platform, e.Baselines[pdn.IVR])
	candidates := e.AllModels(tdp)[1:] // all but the IVR baseline

	t := report.NewTable("Fig 7: SPEC CPU2006 normalized performance at 4W TDP",
		"Benchmark", "Scal", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")
	suite := workload.SPECCPU2006()
	sums := map[pdn.Kind]float64{}
	for _, bench := range suite.Workloads {
		res, err := ev.Compare(tdp, bench, candidates)
		if err != nil {
			return err
		}
		row := []string{bench.Name, report.F2(bench.Scalability)}
		for _, k := range perfOrder {
			row = append(row, report.Pct(res[k].Relative))
			sums[k] += res[k].Relative
		}
		t.AddRow(row...)
	}
	n := float64(len(suite.Workloads))
	avg := []string{"Average", report.F2(suite.MeanScalability())}
	for _, k := range perfOrder {
		avg = append(avg, report.Pct(sums[k]/n))
	}
	t.AddRow(avg...)
	return t.WriteASCII(w)
}
