package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sweep"
)

// envWith returns a copy of the shared env with its own sweep settings and
// a fresh cache, so determinism tests exercise concurrent cache fills.
func envWith(t *testing.T, workers int) *Env {
	t.Helper()
	e := *env(t)
	e.Workers = workers
	e.Cache = sweep.NewCache()
	return &e
}

// TestParallelOutputMatchesSerial is the engine's core guarantee: every
// registered experiment renders byte-identical output whether its grid runs
// on one worker or many. Run with -race to double as the engine's data-race
// gate over the whole evaluation.
func TestParallelOutputMatchesSerial(t *testing.T) {
	serial := envWith(t, 1)
	parallel := envWith(t, 8)
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var a, b bytes.Buffer
			if err := Run(id, serial, &a); err != nil {
				t.Fatalf("serial: %v", err)
			}
			if err := Run(id, parallel, &b); err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("parallel output differs from serial for %s:\n--- serial ---\n%s\n--- parallel ---\n%s",
					id, a.String(), b.String())
			}
		})
	}
}

// TestRunAllMatchesSerialRuns checks the whole-registry path the CLI's
// `-exp all` uses: the engine's concatenated output must equal running the
// ids one by one.
func TestRunAllMatchesSerialRuns(t *testing.T) {
	var want bytes.Buffer
	serial := envWith(t, 1)
	for _, id := range IDs() {
		if err := Run(id, serial, &want); err != nil {
			t.Fatal(err)
		}
		want.WriteByte('\n')
	}
	var got bytes.Buffer
	if err := RunAll(envWith(t, 8), &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("RunAll output differs from serial per-id runs")
	}
}

// TestCacheDedupes verifies the memoizing cache actually absorbs repeated
// evaluations: regenerating the registry twice on one env must hit the
// cache heavily on the second pass and add no new keys.
func TestCacheDedupes(t *testing.T) {
	e := envWith(t, 0)
	var buf bytes.Buffer
	if err := RunAll(e, &buf); err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := e.Cache.Stats()
	if misses1 == 0 {
		t.Fatal("first pass recorded no cache misses; cache is not in the evaluation path")
	}
	if hits1 == 0 {
		t.Error("first pass recorded no cache hits; figures share no scenarios?")
	}
	keys := e.Cache.Len()

	buf.Reset()
	if err := RunAll(e, &buf); err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := e.Cache.Stats()
	if misses2 != misses1 {
		t.Errorf("second pass added %d misses; every evaluation should hit", misses2-misses1)
	}
	if hits2 <= hits1 {
		t.Error("second pass recorded no additional hits")
	}
	if e.Cache.Len() != keys {
		t.Errorf("second pass grew the cache from %d to %d keys", keys, e.Cache.Len())
	}
}

// TestRunUnknownID covers the error contract the CLI relies on: an unknown
// id must fail and the error must carry the valid id list.
func TestRunUnknownID(t *testing.T) {
	err := Run("fig99", envWith(t, 1), &bytes.Buffer{})
	if err == nil {
		t.Fatal("unknown experiment id accepted")
	}
	if !strings.Contains(err.Error(), "fig7") {
		t.Errorf("error %q does not list valid ids", err)
	}
	if Known("fig99") {
		t.Error("Known(fig99) = true")
	}
	if !Known("fig7") {
		t.Error("Known(fig7) = false")
	}
}
