package experiments

import (
	"io"
	"strconv"
	"strings"
	"testing"

	"repro/internal/workload"
)

// sharedEnv builds the environment once; predictor characterization is the
// expensive part.
var sharedEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		e, err := NewEnv()
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = e
	}
	return sharedEnv
}

func TestAllExperimentsRun(t *testing.T) {
	e := env(t)
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			if err := Run(id, e, io.Discard); err != nil {
				t.Fatalf("experiment %s failed: %v", id, err)
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := Run("nope", env(t), io.Discard); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every figure/table of the paper's evaluation has a registered
	// regenerator (the DESIGN.md per-experiment index).
	want := []string{
		"fig2a", "fig2b", "fig3", "fig4", "fig4j", "fig5", "fig7",
		"fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "obs", "tab1", "tab2",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

func TestFig7Headline(t *testing.T) {
	// The Fig 7 output's Average row must show FlexWatts gaining over IVR
	// at 4W (the paper's >22%; the reproduction lands >8%).
	e := env(t)
	var b strings.Builder
	if err := Run("fig7", e, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Average") {
		t.Fatal("no Average row")
	}
	for _, bench := range workload.SPECCPU2006().Names() {
		if !strings.Contains(out, bench) {
			t.Errorf("benchmark %s missing from Fig 7", bench)
		}
	}
}

func TestFig4AccuracySummary(t *testing.T) {
	// The validation summary must report >= 97% accuracy in every cell
	// (§4.3 reports 98.6% worst case, 99.1-99.4% averages).
	e := env(t)
	var b strings.Builder
	if err := Run("fig4", e, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	idx := strings.Index(out, "validation accuracy summary")
	if idx < 0 {
		t.Fatal("no accuracy summary")
	}
	rows := 0
	for _, l := range strings.Split(out[idx:], "\n") {
		fields := strings.Fields(l)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "IVR", "MBVR", "LDO":
		default:
			continue
		}
		rows++
		for _, cell := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
			if err != nil {
				t.Fatalf("bad accuracy cell %q", cell)
			}
			if v < 97 {
				t.Errorf("%s accuracy %.2f%% below 97%%", fields[0], v)
			}
		}
	}
	if rows != 3 {
		t.Errorf("expected 3 summary rows, found %d", rows)
	}
}
