package domain

import (
	"fmt"
	"strings"

	"repro/internal/units"
)

// CState identifies a package power state (§5 Observation 3, Fig 4(j)).
// C0 is the active state; C0MIN is C0 with compute domains at minimum
// frequency; C2–C8 are progressively deeper package idle states.
type CState int

// Package power states modeled by PDNspot.
const (
	C0 CState = iota
	C0MIN
	C2
	C3
	C6
	C7
	C8
	numCStates
)

// CStates lists all package states in canonical order.
func CStates() []CState { return []CState{C0, C0MIN, C2, C3, C6, C7, C8} }

// IdleCStates lists the package idle states of Fig 4(j).
func IdleCStates() []CState { return []CState{C2, C3, C6, C7, C8} }

// String returns the conventional state name.
func (c CState) String() string {
	switch c {
	case C0:
		return "C0"
	case C0MIN:
		return "C0MIN"
	case C2:
		return "C2"
	case C3:
		return "C3"
	case C6:
		return "C6"
	case C7:
		return "C7"
	case C8:
		return "C8"
	default:
		return fmt.Sprintf("CState(%d)", int(c))
	}
}

// ParseCState resolves a conventional state name ("C0", "C0MIN", "C2", …),
// case-insensitively — the inverse of CState.String for the flexwattsd
// request vocabulary.
func ParseCState(s string) (CState, error) {
	for _, c := range CStates() {
		if strings.EqualFold(s, c.String()) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("domain: unknown package state %q (have C0, C0MIN, C2, C3, C6, C7, C8)", s)
}

// ComputeActive reports whether compute domains draw power in the state.
// In C2 and deeper, cores/LLC/GFX are power-gated (paper §5: "the cores and
// graphics engines are idle (power-gated) in this state").
func (c CState) ComputeActive() bool { return c == C0 || c == C0MIN }

// uncoreStatePower gives the SA and IO nominal power per package state.
// The values are calibrated so the platform totals reproduce the paper's
// video-playback example (§5): C0MIN ≈ 2.5 W, C2 ≈ 1.2 W, C8 ≈ 0.13 W.
type uncoreStatePower struct {
	sa, io units.Watt
}

// Platform models the whole client SoC: the four compute domains plus the
// SA/IO nominal power tables, junction-temperature policy, and supported
// TDP range.
type Platform struct {
	domains map[Kind]*Domain
	uncore  map[CState]uncoreStatePower
	saVolt  units.Volt
	ioVolt  units.Volt
}

// StandardTDPs returns the TDP design points the paper evaluates
// (Fig 2, Fig 8): 4, 8, 10, 18, 25, 36, 50 W.
func StandardTDPs() []units.Watt { return []units.Watt{4, 8, 10, 18, 25, 36, 50} }

// NewClientPlatform constructs the modeled client SoC with parameters
// calibrated to Table 1/Table 2:
//
//   - cores: 0.8–4 GHz shared clock, power-virus 30 W at fmax (Table 2's
//     0.6–30 W nominal range over 4–50 W TDPs),
//   - GFX: 0.1–1.2 GHz, power-virus 29.4 W at fmax (0.58–29.4 W range),
//   - LLC: clocked with the cores, 0.5–4 W,
//   - SA/IO: fixed-frequency domains with per-C-state power tables whose
//     totals reproduce the §5 video-playback state powers.
func NewClientPlatform() *Platform {
	coreCurve := VFCurve{A: 0.42, B: 0.17, VMin: 0.55, VMax: 1.10}
	gfxCurve := VFCurve{A: 0.48, B: 0.475, VMin: 0.50, VMax: 1.05}

	p := &Platform{
		domains: make(map[Kind]*Domain, 4),
		uncore: map[CState]uncoreStatePower{
			C0:    {sa: 0.80, io: 0.45},
			C0MIN: {sa: 0.80, io: 0.45},
			C2:    {sa: 0.75, io: 0.45},
			C3:    {sa: 0.55, io: 0.35},
			C6:    {sa: 0.30, io: 0.20},
			C7:    {sa: 0.22, io: 0.13},
			C8:    {sa: 0.09, io: 0.04},
		},
		saVolt: 0.85,
		ioVolt: 1.05,
	}

	// Per-core dynamic virus power: both cores together dissipate 30 W at
	// (4 GHz, 1.1 V) with a 22 % leakage fraction, so the dynamic part is
	// 23.4 W split across two cores; each core's Cdyn follows.
	const coresVirusDyn = 23.4 // W at 4 GHz, 1.1 V, both cores
	coreCdyn := coresVirusDyn / 2 / (1.1 * 1.1 * 4e9)
	corePleak := 0.90 // W per core at 1.0 V, 80 °C (22 % FL at typical points)
	for _, k := range []Kind{Core0, Core1} {
		p.domains[k] = New(Params{
			Kind:     k,
			FMin:     units.GigaHertz(0.8),
			FMax:     units.GigaHertz(4.0),
			FStep:    units.MegaHertz(100),
			Curve:    coreCurve,
			Cdyn:     coreCdyn,
			PleakRef: corePleak,
		})
	}

	// GFX: 29.4 W virus at (1.2 GHz, 1.05 V), 45 % leakage fraction
	// (§3.1 cites Rusu et al. for the graphics domain's FL).
	const gfxVirusDyn = 16.2 // W dynamic at fmax
	p.domains[GFX] = New(Params{
		Kind:     GFX,
		FMin:     units.GigaHertz(0.1),
		FMax:     units.GigaHertz(1.2),
		FStep:    units.MegaHertz(50),
		Curve:    gfxCurve,
		Cdyn:     gfxVirusDyn / (1.05 * 1.05 * 1.2e9),
		PleakRef: 7.0,
	})

	// LLC: clocked with the cores (Table 1: "LLC size scales proportionally
	// to the CPU core and graphics engine frequencies"), 4 W max.
	const llcVirusDyn = 3.12 // W dynamic at 4 GHz, 1.1 V
	p.domains[LLC] = New(Params{
		Kind:     LLC,
		FMin:     units.GigaHertz(0.8),
		FMax:     units.GigaHertz(4.0),
		FStep:    units.MegaHertz(100),
		Curve:    coreCurve,
		Cdyn:     llcVirusDyn / (1.1 * 1.1 * 4e9),
		PleakRef: 0.41,
	})
	return p
}

// Domain returns the compute domain of the given kind; it panics for SA/IO,
// which are table-driven (use UncorePower).
func (p *Platform) Domain(k Kind) *Domain {
	d, ok := p.domains[k]
	if !ok {
		panic(fmt.Sprintf("domain: %v is not a compute domain", k))
	}
	return d
}

// UncorePower returns the nominal power of SA or IO in the given package
// state.
func (p *Platform) UncorePower(k Kind, c CState) units.Watt {
	up, ok := p.uncore[c]
	if !ok {
		panic(fmt.Sprintf("domain: unknown C-state %v", c))
	}
	switch k {
	case SA:
		return up.sa
	case IO:
		return up.io
	default:
		panic(fmt.Sprintf("domain: %v is not an uncore domain", k))
	}
}

// UncoreVoltage returns the fixed rail voltage of SA or IO.
func (p *Platform) UncoreVoltage(k Kind) units.Volt {
	switch k {
	case SA:
		return p.saVolt
	case IO:
		return p.ioVolt
	default:
		panic(fmt.Sprintf("domain: %v is not an uncore domain", k))
	}
}

// JunctionTemp returns the junction-temperature design point for a TDP
// following §7.1: fan-less systems run at Tj = 80 °C up to 8 W and 100 °C
// above; battery-life workloads are evaluated at 50 °C.
func JunctionTemp(tdp units.Watt, batteryLife bool) float64 {
	if batteryLife {
		return 50
	}
	if tdp <= 8 {
		return 80
	}
	return 100
}

// MaxComputeVoltage returns the highest supply voltage across active compute
// domains at the given frequencies; the LDO PDN's shared V_IN rail is set to
// this value (§2.3).
func (p *Platform) MaxComputeVoltage(freqs map[Kind]units.Hertz) units.Volt {
	var vmax units.Volt
	for k, f := range freqs {
		if !k.IsCompute() {
			continue
		}
		if v := p.Domain(k).VoltageAt(f); v > vmax {
			vmax = v
		}
	}
	return vmax
}
