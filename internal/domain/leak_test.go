package domain

import (
	"math"
	"testing"
)

// TestLeakageMemoBitwise pins the memo contract: the memoized Leakage path
// returns the exact float64 bits of the direct math.Pow·math.Exp model,
// including on repeated (cached) queries, across distinct PleakRef values
// that share voltage/temperature points (the set-collision case).
func TestLeakageMemoBitwise(t *testing.T) {
	prefs := []float64{0.3, 0.9, 1.7, 2.4}
	volts := []float64{0.55, 0.6, 0.75, 0.9, 1.0, 1.1}
	temps := []float64{40, 60, 80, 100}
	for pass := 0; pass < 2; pass++ { // second pass hits the memo
		for _, pref := range prefs {
			for _, v := range volts {
				for _, tj := range temps {
					want := rawLeakage(pref, v, tj)
					got := leakage(pref, v, tj)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("pass %d: leakage(%g, %g, %g) = %x, raw %x",
							pass, pref, v, tj,
							math.Float64bits(got), math.Float64bits(want))
					}
				}
			}
		}
	}
}

// TestLeakageMemoMatchesModel pins the public method against the closed
// form, including the v<=0 early return that bypasses the memo.
func TestLeakageMemoMatchesModel(t *testing.T) {
	d := New(Params{
		Kind: Core0, FMin: 0.8e9, FMax: 4e9, FStep: 0.1e9,
		Curve: VFCurve{A: 0.5, B: 0.15, VMin: 0.55, VMax: 1.2},
		Cdyn:  1e-9, PleakRef: 1.3,
	})
	if got := d.Leakage(0, 80); got != 0 {
		t.Fatalf("Leakage(0, 80) = %g, want 0", got)
	}
	if got := d.Leakage(-1, 80); got != 0 {
		t.Fatalf("Leakage(-1, 80) = %g, want 0", got)
	}
	for _, v := range []float64{0.6, 0.85, 1.0, 1.15} {
		for _, tj := range []float64{25, 80, 105} {
			want := 1.3 * math.Pow(v/LeakVRef, LeakVoltageExp) *
				math.Exp(LeakTempCoeff*(tj-LeakTRef))
			got := d.Leakage(v, tj)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("Leakage(%g, %g) = %x, want %x",
					v, tj, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}
