package domain

import (
	"math"
	"sync/atomic"

	"repro/internal/units"
)

// leakEntry memoizes one leakage evaluation point. Leakage depends only on
// (PleakRef, v, tj); grid construction revisits the same handful of
// voltage/temperature points per domain thousands of times (TDPScenario's
// binary search over the DVFS grid re-evaluates Power at every probe, and a
// rectangular TDP×AR sweep re-derives the same frequencies per column), so
// the math.Pow·math.Exp product is worth memoizing the same way
// loadline.GuardbandScale is.
type leakEntry struct {
	pref units.Watt
	v    units.Volt
	tj   float64
	p    units.Watt
}

// leakCache is a 4-way set-associative, lock-free memo for Leakage, the
// same structure as loadline's guardband memo: each slot is an atomic
// pointer to an immutable entry, a hit is a hash, a pointer load and three
// float compares. rawLeakage is a pure function, so a cached hit returns
// the exact float bits the direct computation produced regardless of which
// goroutine filled the slot.
const (
	leakWays  = 4
	leakSets  = 1 << 10
	leakSlots = leakSets * leakWays
)

var leakCache [leakSlots]atomic.Pointer[leakEntry]

// leakSet mixes the three operand bit patterns into a set index
// (splitmix64-style multiply-xorshift).
func leakSet(pref units.Watt, v units.Volt, tj float64) uint64 {
	h := math.Float64bits(pref)
	h = (h ^ math.Float64bits(v)*0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
	h = (h ^ math.Float64bits(tj)*0x94d049bb133111eb) * 0xff51afd7ed558ccd
	h ^= h >> 33
	return (h % leakSets) * leakWays
}

// rawLeakage is the uncached leakage model shared by the memoized and the
// direct call paths; both therefore produce identical bits.
func rawLeakage(pref units.Watt, v units.Volt, tj float64) units.Watt {
	return pref * math.Pow(v/LeakVRef, LeakVoltageExp) *
		math.Exp(LeakTempCoeff*(tj-LeakTRef))
}

// leakage returns rawLeakage(pref, v, tj) through the memo.
func leakage(pref units.Watt, v units.Volt, tj float64) units.Watt {
	set := leakSet(pref, v, tj)
	insert := &leakCache[set]
	haveEmpty := false
	for w := uint64(0); w < leakWays; w++ {
		slot := &leakCache[set+w]
		e := slot.Load()
		if e == nil {
			if !haveEmpty {
				haveEmpty = true
				insert = slot
			}
			continue
		}
		if e.pref == pref && e.v == v && e.tj == tj {
			return e.p
		}
	}
	p := rawLeakage(pref, v, tj)
	insert.Store(&leakEntry{pref: pref, v: v, tj: tj, p: p})
	return p
}
