// Package domain models the processor domains of the client SoC studied in
// the FlexWatts paper (Table 1): two CPU cores sharing a clock domain, the
// last-level cache (LLC), the graphics engines (GFX), the system agent (SA),
// and the IO domain.
//
// Each compute domain carries a voltage-frequency curve and a power model
//
//	P(f, AR, Tj) = AR · Cdyn · V(f)² · f  +  Pleak0 · (V/Vref)^δ · e^{k·(Tj−Tref)}
//
// where AR is the paper's application ratio (the workload's switching rate
// relative to the power-virus workload, §2.4), δ ≈ 2.8 is the validated
// leakage-voltage exponent (§3.1), and the exponential term captures the
// leakage-temperature dependence used by the paper's thermal-conditioning
// methodology (§4.2). The SA and IO domains run at fixed frequency and are
// modeled by per-power-state nominal power tables, matching the paper's
// observation that their power is low and narrow across TDPs (Fig 2(b)).
package domain

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Kind identifies a processor domain.
type Kind int

// The six processor domains of Table 1 / Fig 1. Kind values are dense in
// [0, NumKinds), so [NumKinds]T arrays indexed by Kind are the canonical
// per-domain storage (pdn.Scenario.Loads, refmodel's tone banks).
const (
	Core0 Kind = iota
	Core1
	LLC
	GFX
	SA
	IO
	// NumKinds counts the domains; it is not itself a valid Kind.
	NumKinds
)

// Kinds lists all domains in canonical order.
func Kinds() []Kind { return []Kind{Core0, Core1, LLC, GFX, SA, IO} }

// ComputeKinds lists the wide-power-range domains that FlexWatts serves with
// its hybrid VR (cores, LLC, graphics).
func ComputeKinds() []Kind { return []Kind{Core0, Core1, LLC, GFX} }

// UncoreKinds lists the narrow-power-range domains (SA, IO) that FlexWatts
// serves with dedicated off-chip VRs.
func UncoreKinds() []Kind { return []Kind{SA, IO} }

// String returns the paper's name for the domain.
func (k Kind) String() string {
	switch k {
	case Core0:
		return "Core0"
	case Core1:
		return "Core1"
	case LLC:
		return "LLC"
	case GFX:
		return "GFX"
	case SA:
		return "SA"
	case IO:
		return "IO"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsCompute reports whether the domain belongs to the compute group.
func (k Kind) IsCompute() bool {
	return k == Core0 || k == Core1 || k == LLC || k == GFX
}

// Leakage model constants validated in §3.1 on an i7-6600U: leakage scales
// with supply voltage to the power δ ≈ 2.8, and exponentially with junction
// temperature (doubling roughly every 28 °C).
const (
	LeakVoltageExp = 2.8
	LeakTempCoeff  = 0.025 // 1/°C
	LeakVRef       = 1.0   // V
	LeakTRef       = 80.0  // °C
)

// VFCurve is a linear voltage-frequency relation V(f) = A + B·f_GHz clamped
// to [VMin, VMax]; modern client parts are close to linear over their
// operating range.
type VFCurve struct {
	A, B       float64 // volts, volts per GHz
	VMin, VMax units.Volt
}

// VoltageAt returns the supply voltage required for frequency f.
func (c VFCurve) VoltageAt(f units.Hertz) units.Volt {
	v := c.A + c.B*(f/units.Giga)
	return units.Clamp(v, c.VMin, c.VMax)
}

// Params describes a compute domain's static power-model parameters.
type Params struct {
	Kind Kind
	// FMin/FMax bound the clock (Table 1: cores 0.8–4 GHz, GFX 0.1–1.2 GHz).
	FMin, FMax units.Hertz
	// FStep is the DVFS granularity (§3.3: 100 MHz cores, 50 MHz GFX).
	FStep units.Hertz
	// Curve is the voltage-frequency curve.
	Curve VFCurve
	// Cdyn is the effective switched capacitance of the power-virus
	// workload (AR = 1), in farads: Pdyn = Cdyn · V² · f.
	Cdyn float64
	// PleakRef is the leakage power at LeakVRef volts and LeakTRef °C.
	PleakRef units.Watt
}

// Domain is an instantiated compute domain.
type Domain struct {
	p Params
}

// New constructs a compute domain and validates its parameters.
func New(p Params) *Domain {
	units.CheckPositive("FMin", p.FMin)
	units.CheckPositive("FMax", p.FMax)
	if p.FMax < p.FMin {
		panic("domain: FMax < FMin")
	}
	units.CheckPositive("FStep", p.FStep)
	units.CheckPositive("Cdyn", p.Cdyn)
	units.CheckNonNegative("PleakRef", p.PleakRef)
	return &Domain{p: p}
}

// Kind returns the domain identity.
func (d *Domain) Kind() Kind { return d.p.Kind }

// Params returns a copy of the static parameters.
func (d *Domain) Params() Params { return d.p }

// ClampFreq limits f to the domain's range and snaps it down to the DVFS
// step grid.
func (d *Domain) ClampFreq(f units.Hertz) units.Hertz {
	f = units.Clamp(f, d.p.FMin, d.p.FMax)
	steps := math.Floor((f-d.p.FMin)/d.p.FStep + 1e-9)
	return d.p.FMin + steps*d.p.FStep
}

// VoltageAt returns the supply voltage for frequency f.
func (d *Domain) VoltageAt(f units.Hertz) units.Volt { return d.p.Curve.VoltageAt(f) }

// Leakage returns the leakage power at supply voltage v and junction
// temperature tj (°C). The computation is memoized (see leak.go): the
// evaluation point depends only on (PleakRef, v, tj), and sweep drivers
// revisit the same operating voltages across thousands of grid points.
func (d *Domain) Leakage(v units.Volt, tj float64) units.Watt {
	if v <= 0 {
		return 0
	}
	return leakage(d.p.PleakRef, v, tj)
}

// DynVirus returns the dynamic power of the power-virus workload (AR = 1)
// at frequency f.
func (d *Domain) DynVirus(f units.Hertz) units.Watt {
	v := d.VoltageAt(f)
	return d.p.Cdyn * v * v * f
}

// Power returns the domain's nominal power at frequency f, application
// ratio ar and junction temperature tj: the AR-scaled virus dynamic power
// plus leakage. This is the PNOM input to the PDN models (Fig 1).
func (d *Domain) Power(f units.Hertz, ar, tj float64) units.Watt {
	units.CheckFraction("ar", ar)
	return ar*d.DynVirus(f) + d.Leakage(d.VoltageAt(f), tj)
}

// LeakFraction returns FL = Pleak / PNOM at the operating point, the
// quantity Table 2 reports as 20–45 % depending on domain.
func (d *Domain) LeakFraction(f units.Hertz, ar, tj float64) float64 {
	p := d.Power(f, ar, tj)
	if p == 0 {
		return 0
	}
	return d.Leakage(d.VoltageAt(f), tj) / p
}

// MaxFreqForPower returns the highest grid frequency whose nominal power at
// (ar, tj) does not exceed budget, or FMin if even the minimum exceeds it.
// The power model is monotone in f, so a binary search over the DVFS grid
// suffices.
func (d *Domain) MaxFreqForPower(budget units.Watt, ar, tj float64) units.Hertz {
	lo, hi := d.p.FMin, d.p.FMax
	if d.Power(lo, ar, tj) > budget {
		return lo
	}
	if d.Power(hi, ar, tj) <= budget {
		return hi
	}
	for hi-lo > d.p.FStep/2 {
		mid := d.ClampFreq((lo + hi) / 2)
		if mid <= lo {
			break
		}
		if d.Power(mid, ar, tj) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
