package domain

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func testPlatform() *Platform { return NewClientPlatform() }

func TestVFCurve(t *testing.T) {
	c := VFCurve{A: 0.42, B: 0.17, VMin: 0.55, VMax: 1.10}
	if got := c.VoltageAt(units.GigaHertz(4)); math.Abs(got-1.10) > 1e-9 {
		t.Errorf("V(4GHz) = %g, want 1.10", got)
	}
	if got := c.VoltageAt(units.GigaHertz(0.5)); got != 0.55 {
		t.Errorf("V(0.5GHz) = %g, want clamped 0.55", got)
	}
	if got := c.VoltageAt(units.GigaHertz(2)); math.Abs(got-0.76) > 1e-9 {
		t.Errorf("V(2GHz) = %g, want 0.76", got)
	}
}

func TestClampFreq(t *testing.T) {
	d := testPlatform().Domain(Core0)
	if got := d.ClampFreq(units.GigaHertz(10)); got != units.GigaHertz(4) {
		t.Errorf("clamp above max: %g", got)
	}
	if got := d.ClampFreq(units.GigaHertz(0.1)); got != units.GigaHertz(0.8) {
		t.Errorf("clamp below min: %g", got)
	}
	// Snaps down to the 100 MHz grid.
	if got := d.ClampFreq(units.GigaHertz(1.279)); math.Abs(got-units.GigaHertz(1.2)) > 1 {
		t.Errorf("grid snap: %g", got)
	}
	if got := d.ClampFreq(units.GigaHertz(1.3)); math.Abs(got-units.GigaHertz(1.3)) > 1 {
		t.Errorf("exact grid point moved: %g", got)
	}
}

func TestPowerMonotone(t *testing.T) {
	d := testPlatform().Domain(Core0)
	// Power rises with frequency at fixed AR/Tj, and with AR at fixed f.
	prev := 0.0
	for f := 0.8e9; f <= 4.0e9; f += 0.4e9 {
		p := d.Power(f, 0.6, 80)
		if p <= prev {
			t.Fatalf("power not increasing at %g Hz: %g <= %g", f, p, prev)
		}
		prev = p
	}
	if !(d.Power(2e9, 0.8, 80) > d.Power(2e9, 0.4, 80)) {
		t.Error("power should rise with AR")
	}
	if !(d.Power(2e9, 0.6, 100) > d.Power(2e9, 0.6, 60)) {
		t.Error("power should rise with temperature (leakage)")
	}
}

func TestCoresVirusCalibration(t *testing.T) {
	// Both cores at fmax/power-virus/100C dissipate ~30W (Table 2's upper
	// bound for the cores' nominal power range).
	p := testPlatform()
	total := 2 * p.Domain(Core0).Power(units.GigaHertz(4), 1, 100)
	if total < 27 || total > 33 {
		t.Errorf("cores virus power = %.1fW, want ~30W", total)
	}
	// GFX virus at fmax ~29.4W.
	gfx := p.Domain(GFX).Power(units.GigaHertz(1.2), 1, 100)
	if gfx < 26 || gfx > 33 {
		t.Errorf("GFX virus power = %.1fW, want ~29.4W", gfx)
	}
	// LLC at fmax ~4W.
	llc := p.Domain(LLC).Power(units.GigaHertz(4), 1, 100)
	if llc < 3.4 || llc > 4.6 {
		t.Errorf("LLC virus power = %.1fW, want ~4W", llc)
	}
}

func TestLeakFractionCalibration(t *testing.T) {
	// §3.1: ~22% leakage fraction for cores at a typical operating point,
	// ~45% for graphics.
	p := testPlatform()
	fl := p.Domain(Core0).LeakFraction(units.GigaHertz(2.5), 0.6, 90)
	if fl < 0.15 || fl > 0.30 {
		t.Errorf("core leak fraction = %.2f, want ~0.22", fl)
	}
	flg := p.Domain(GFX).LeakFraction(units.GigaHertz(1.2), 1, 100)
	if flg < 0.35 || flg > 0.55 {
		t.Errorf("GFX leak fraction = %.2f, want ~0.45", flg)
	}
}

func TestLeakageScaling(t *testing.T) {
	d := testPlatform().Domain(Core0)
	// Voltage exponent: leak(1.1)/leak(1.0) = 1.1^2.8.
	ratio := d.Leakage(1.1, 80) / d.Leakage(1.0, 80)
	if math.Abs(ratio-math.Pow(1.1, 2.8)) > 1e-9 {
		t.Errorf("voltage scaling ratio = %g", ratio)
	}
	// Temperature: doubles roughly every 28C (e^{0.025*28} ~ 2.01).
	ratio = d.Leakage(1.0, 108) / d.Leakage(1.0, 80)
	if ratio < 1.9 || ratio > 2.2 {
		t.Errorf("temperature doubling ratio = %g", ratio)
	}
	if d.Leakage(0, 80) != 0 {
		t.Error("zero voltage must have zero leakage")
	}
}

func TestMaxFreqForPowerInverse(t *testing.T) {
	d := testPlatform().Domain(Core0)
	f := func(budgetRaw, arRaw float64) bool {
		budget := 0.3 + math.Mod(math.Abs(budgetRaw), 20)
		ar := 0.1 + math.Mod(math.Abs(arRaw), 0.9)
		fm := d.MaxFreqForPower(budget, ar, 80)
		// The selected frequency fits the budget (unless even FMin does
		// not), and the next grid step exceeds it.
		if d.Power(fm, ar, 80) > budget && fm > d.Params().FMin {
			return false
		}
		next := fm + d.Params().FStep
		if next <= d.Params().FMax && d.Power(next, ar, 80) <= budget {
			return false // not maximal
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestUncoreStateTotals(t *testing.T) {
	// §5 video playback example: platform nominal ~2.5W in C0MIN, 1.2W in
	// C2, 0.13W in C8. SA+IO alone pin the C2/C8 values.
	p := testPlatform()
	if got := p.UncorePower(SA, C2) + p.UncorePower(IO, C2); math.Abs(got-1.2) > 1e-9 {
		t.Errorf("C2 SA+IO = %g, want 1.2", got)
	}
	if got := p.UncorePower(SA, C8) + p.UncorePower(IO, C8); math.Abs(got-0.13) > 1e-9 {
		t.Errorf("C8 SA+IO = %g, want 0.13", got)
	}
	// Deeper states draw less.
	prev := math.Inf(1)
	for _, c := range []CState{C2, C3, C6, C7, C8} {
		got := p.UncorePower(SA, c) + p.UncorePower(IO, c)
		if got >= prev {
			t.Errorf("%v power %g not below previous %g", c, got, prev)
		}
		prev = got
	}
}

func TestCStateProperties(t *testing.T) {
	if !C0.ComputeActive() || !C0MIN.ComputeActive() {
		t.Error("C0/C0MIN must be compute-active")
	}
	for _, c := range IdleCStates() {
		if c.ComputeActive() {
			t.Errorf("%v should be idle", c)
		}
	}
	if C0MIN.String() != "C0MIN" || C8.String() != "C8" {
		t.Error("CState.String mismatch")
	}
}

func TestJunctionTemp(t *testing.T) {
	if JunctionTemp(4, false) != 80 {
		t.Error("4W should run at 80C")
	}
	if JunctionTemp(50, false) != 100 {
		t.Error("50W should run at 100C")
	}
	if JunctionTemp(50, true) != 50 {
		t.Error("battery life runs at 50C")
	}
}

func TestMaxComputeVoltage(t *testing.T) {
	p := testPlatform()
	freqs := map[Kind]units.Hertz{
		Core0: units.GigaHertz(1.0),
		GFX:   units.GigaHertz(1.2),
		SA:    units.GigaHertz(1.0), // ignored: not compute
	}
	want := p.Domain(GFX).VoltageAt(units.GigaHertz(1.2))
	if got := p.MaxComputeVoltage(freqs); got != want {
		t.Errorf("MaxComputeVoltage = %g, want %g (GFX)", got, want)
	}
}

func TestAccessorPanics(t *testing.T) {
	p := testPlatform()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Domain(SA)", func() { p.Domain(SA) })
	mustPanic("UncorePower(Core0)", func() { p.UncorePower(Core0, C0) })
	mustPanic("UncoreVoltage(GFX)", func() { p.UncoreVoltage(GFX) })
}

func TestKindHelpers(t *testing.T) {
	if len(Kinds()) != 6 || len(ComputeKinds()) != 4 || len(UncoreKinds()) != 2 {
		t.Error("kind list sizes")
	}
	if !Core0.IsCompute() || SA.IsCompute() {
		t.Error("IsCompute misclassifies")
	}
	if Core0.String() != "Core0" || IO.String() != "IO" {
		t.Error("Kind.String mismatch")
	}
}

func TestParseCState(t *testing.T) {
	for _, c := range CStates() {
		got, err := ParseCState(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCState(%q) = %v, %v", c.String(), got, err)
		}
	}
	if got, err := ParseCState("c0min"); err != nil || got != C0MIN {
		t.Errorf("ParseCState is not case-insensitive: %v, %v", got, err)
	}
	if _, err := ParseCState("C99"); err == nil {
		t.Error("ParseCState accepted an unknown state")
	}
}
