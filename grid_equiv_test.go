// Grid-equivalence property test: the batch EvaluateGrid path must return
// float64-bitwise-identical results to the scalar Evaluate loop (documented
// bound ε = 0), for every PDN kind and both hybrid modes, on the real
// platform parameters. Bitwise identity — not an epsilon band — is what
// guarantees the experiment goldens stay byte-identical and that grid- and
// scalar-resolved cache entries can coexist in one sweep.Cache.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/workload"
)

// gridEquivGrid builds the property grid: every workload type crossed with
// TDP and activity-ratio sweeps (the shape experiment drivers and batch API
// clients produce — AR innermost, so the stage memos are exercised in their
// hit and miss regimes), plus the C-state ladder.
func gridEquivGrid(tb testing.TB) *pdn.Grid {
	tb.Helper()
	e := benchEnv(tb)
	g := pdn.NewGrid(0)
	for _, wt := range workload.Types() {
		for tdp := 4.0; tdp <= 50; tdp += 5.75 {
			for ar := 0.25; ar <= 1; ar += 0.15 {
				s, err := workload.TDPScenario(e.Platform, tdp, wt, ar)
				if err != nil {
					tb.Fatal(err)
				}
				g.Append(s)
			}
		}
	}
	for _, c := range []domain.CState{domain.C0MIN, domain.C2, domain.C6, domain.C8} {
		g.Append(workload.CStateScenario(e.Platform, c))
	}
	return g
}

// TestGridEquivalence pins EvaluateGrid == looped Evaluate, bitwise, for
// the four static baselines and FlexWatts in both hybrid modes.
func TestGridEquivalence(t *testing.T) {
	e := benchEnv(t)
	g := gridEquivGrid(t)
	out := make([]pdn.Result, g.Len())

	for _, k := range pdn.Kinds() {
		m := e.Baselines[k]
		ge, ok := m.(interface {
			EvaluateGrid(*pdn.Grid, []pdn.Result) error
		})
		if !ok {
			t.Fatalf("%v baseline does not implement EvaluateGrid", k)
		}
		if err := ge.EvaluateGrid(g, out); err != nil {
			t.Fatalf("%v EvaluateGrid: %v", k, err)
		}
		for i := 0; i < g.Len(); i++ {
			want, err := m.Evaluate(g.At(i))
			if err != nil {
				t.Fatalf("%v scalar point %d: %v", k, i, err)
			}
			if out[i] != want {
				t.Errorf("%v point %d: grid result differs from scalar\n grid:   %+v\n scalar: %+v", k, i, out[i], want)
			}
		}
	}

	for _, mode := range core.Modes() {
		if err := e.Flex.EvaluateGridMode(g, out, mode); err != nil {
			t.Fatalf("FlexWatts %v EvaluateGridMode: %v", mode, err)
		}
		for i := 0; i < g.Len(); i++ {
			want, err := e.Flex.EvaluateMode(g.At(i), mode)
			if err != nil {
				t.Fatalf("FlexWatts %v scalar point %d: %v", mode, i, err)
			}
			if out[i] != want {
				t.Errorf("FlexWatts %v point %d: grid result differs from scalar\n grid:   %+v\n scalar: %+v", mode, i, out[i], want)
			}
		}
	}
}
