#!/usr/bin/env bash
# Smoke test for the flexwattsd serving daemon: build it with the race
# detector, boot it, hit /healthz and one experiment endpoint per format,
# and diff the served ASCII body against the committed golden. Run by
# `make smoke` locally and by the CI smoke job.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
BIN="$(mktemp -d)/flexwattsd"
OUT="$(mktemp -d)"

echo "== building flexwattsd (-race)"
go build -race -o "$BIN" ./cmd/flexwattsd

"$BIN" -addr "127.0.0.1:${PORT}" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true' EXIT

echo "== waiting for /healthz"
for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" -o "$OUT/health.json" 2>/dev/null; then
        break
    fi
    sleep 0.2
done
grep -q '"status": "ok"' "$OUT/health.json"
echo "   healthz ok"

echo "== listing experiments"
curl -fsS "$BASE/v1/experiments" | grep -q '"id": "fig7"'

echo "== ascii body must equal the committed golden"
curl -fsS "$BASE/v1/experiments/tab1?format=ascii" -o "$OUT/tab1.ascii"
diff -u internal/experiments/testdata/tab1.golden "$OUT/tab1.ascii"
curl -fsS "$BASE/v1/experiments/fig4j?format=ascii" -o "$OUT/fig4j.ascii"
diff -u internal/experiments/testdata/fig4j.golden "$OUT/fig4j.ascii"
echo "   golden diff clean"

echo "== json body must parse"
curl -fsS "$BASE/v1/experiments/tab1?format=json" -o "$OUT/tab1.json"
python3 -m json.tool "$OUT/tab1.json" > /dev/null
grep -q '"id": "tab1"' "$OUT/tab1.json"

echo "== csv body must carry the header record"
curl -fsS "$BASE/v1/experiments/tab1?format=csv" | grep -q '^Domain,Description$'

echo "== evaluate batch"
curl -fsS -X POST "$BASE/v1/evaluate" -d '{
  "points": [
    {"pdn": "IVR", "tdp": 18, "workload": "multi-thread", "ar": 0.6},
    {"pdn": "FlexWatts", "tdp": 4, "workload": "single-thread", "ar": 0.5}
  ]
}' -o "$OUT/eval.json"
python3 -m json.tool "$OUT/eval.json" > /dev/null
grep -q '"etee"' "$OUT/eval.json"

echo "== graceful shutdown"
kill -TERM "$PID"
wait "$PID"
trap - EXIT
echo "smoke: all checks passed"
