#!/usr/bin/env bash
# Crash-safety smoke for the flexwattsd persistent cache tier: boot the
# daemon (race-built) with -cache-dir, drive evaluate load over baseline
# PDN kinds (the cached path), SIGKILL it mid-traffic, corrupt a byte of
# the on-disk log for good measure, then restart over the same directory
# and assert the crash-safety contract:
#
#   - the second boot reaches /readyz 200 (recovery never wedges boot)
#   - records persisted by the first life warm-load into the second
#   - repeated requests score warm hits (the tier actually answers)
#   - the served bodies are byte-identical across the crash
#   - no request ever 5xxes (boot-time /readyz 503s are the probe's
#     documented contract and are excluded)
#   - DELETE /v1/admin/cache flushes both tiers
#
# Run by `make crash-smoke` locally and by the CI crash-smoke job.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${CRASH_PORT:-18091}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
CACHE="$TMP/cache"
PID=""

cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
}
trap cleanup EXIT

echo "== building flexwattsd (-race)"
go build -race -o "$TMP/flexwattsd" ./cmd/flexwattsd

# batch renders an evaluate body spreading every baseline kind over a TDP
# grid (the modeled range is [4, 50] W); offset shifts the AR axis so
# distinct calls create distinct cache keys.
batch() {
    local offset="$1" pts="" sep="" kind i tdp ar
    for kind in IVR MBVR LDO IMBVR; do
        for i in $(seq 0 15); do
            tdp=$(awk "BEGIN{printf \"%.3f\", 4 + $i * 0.5}")
            ar=$(awk "BEGIN{printf \"%.4f\", 0.2 + (($offset * 16 + $i) % 750) / 1000.0}")
            pts="$pts$sep{\"pdn\":\"$kind\",\"tdp\":$tdp,\"workload\":\"multi-thread\",\"ar\":$ar}"
            sep=","
        done
    done
    printf '{"points":[%s]}' "$pts"
}

wait_ready() {
    for _ in $(seq 1 150); do
        if curl -fsS "$BASE/readyz" -o /dev/null 2>/dev/null; then
            return 0
        fi
        sleep 0.2
    done
    echo "crash-smoke: FAILED — daemon never became ready" >&2
    exit 1
}

# evaluate POSTs one body and fails the script on any non-200.
evaluate() {
    curl -fsS -X POST -H 'Content-Type: application/json' \
        --data-binary @- "$BASE/v1/evaluate" <<<"$1"
}

echo "== first life: boot with -cache-dir $CACHE"
"$TMP/flexwattsd" -addr "127.0.0.1:${PORT}" -cache-dir "$CACHE" >"$TMP/life1.log" 2>&1 &
PID=$!
wait_ready

echo "== drive cached load"
BODY="$(batch 0)"
BASELINE="$(evaluate "$BODY")"
evaluate "$(batch 1)" >/dev/null
evaluate "$(batch 2)" >/dev/null

echo "== SIGKILL mid-traffic"
for i in $(seq 1 40); do
    evaluate "$(batch "$((2 + i))")" >/dev/null 2>&1 &
done
sleep 0.3
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""
wait || true # reap the in-flight curls; mid-kill failures are expected

if ! ls "$CACHE"/*.seg >/dev/null 2>&1; then
    echo "crash-smoke: FAILED — no segment files written before the kill" >&2
    exit 1
fi

echo "== corrupt one byte of the log"
SEG="$(ls "$CACHE"/*.seg | head -1)"
SIZE=$(wc -c <"$SEG")
if [ "$SIZE" -gt 64 ]; then
    printf '\xff' | dd of="$SEG" bs=1 seek=$((SIZE - 24)) count=1 conv=notrunc status=none
fi

echo "== second life: recover from the crashed, corrupted directory"
"$TMP/flexwattsd" -addr "127.0.0.1:${PORT}" -cache-dir "$CACHE" >"$TMP/life2.log" 2>&1 &
PID=$!
wait_ready

echo "== warm recovery must answer byte-identically"
WARM="$(evaluate "$BODY")"
if [ "$BASELINE" != "$WARM" ]; then
    echo "crash-smoke: FAILED — warm response differs from pre-crash response" >&2
    exit 1
fi
evaluate "$BODY" >/dev/null

echo "== tier statistics: warm-loaded records and warm hits"
curl -fsS "$BASE/v1/admin/cache" -o "$TMP/cache.json"
LOADED=$(grep -o '"loaded_records": *[0-9]*' "$TMP/cache.json" | grep -o '[0-9]*$')
WARM_HITS=$(grep -o '"warm_hits": *[0-9]*' "$TMP/cache.json" | grep -o '[0-9]*$')
if [ -z "$LOADED" ] || [ "$LOADED" -eq 0 ]; then
    echo "crash-smoke: FAILED — second life warm-loaded zero records" >&2
    cat "$TMP/cache.json" >&2
    exit 1
fi
if [ -z "$WARM_HITS" ] || [ "$WARM_HITS" -eq 0 ]; then
    echo "crash-smoke: FAILED — zero warm hits after recovery" >&2
    cat "$TMP/cache.json" >&2
    exit 1
fi
echo "   loaded_records=$LOADED warm_hits=$WARM_HITS"

echo "== zero 5xx (excluding the /readyz boot-gating contract)"
curl -fsS "$BASE/metrics" -o "$TMP/metrics.txt"
if grep -E 'flexwattsd_requests_total\{[^}]*status="5xx"\} [1-9]' "$TMP/metrics.txt" \
        | grep -v 'route="readyz"' | grep .; then
    echo "crash-smoke: FAILED — daemon served 5xx responses" >&2
    exit 1
fi

echo "== admin flush empties both tiers"
curl -fsS -X DELETE "$BASE/v1/admin/cache" -o "$TMP/flush.json"
grep -q '"flushed_keys"' "$TMP/flush.json"
curl -fsS "$BASE/v1/admin/cache" -o "$TMP/cache2.json"
KEYS=$(grep -o '"keys": *[0-9]*' "$TMP/cache2.json" | grep -o '[0-9]*$')
if [ "$KEYS" != "0" ]; then
    echo "crash-smoke: FAILED — memory tier still holds $KEYS keys after flush" >&2
    exit 1
fi
evaluate "$BODY" >/dev/null # and the daemon still evaluates after the flush

echo "== graceful shutdown"
kill -TERM "$PID"
wait "$PID"
PID=""
trap - EXIT
echo "crash-smoke: all checks passed"
