#!/usr/bin/env bash
# SLO measurement for the flexwattsd serving daemon: build the daemon
# (with the race detector, so the measured build is the checked build),
# boot it, drive it with cmd/loadgen in both buffered and streaming mode,
# assert the service-level floor (non-zero throughput, zero 5xx at low
# offered load), and merge the numbers into the BENCH_<pr>.json perf
# record via cmd/benchjson. Run by `make slo` locally and by the CI
# slo-smoke job.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SLO_PORT:-18090}"
BASE="http://127.0.0.1:${PORT}"
RPS="${SLO_RPS:-40}"
BATCH="${SLO_BATCH:-64}"
DURATION="${SLO_DURATION:-5s}"
BENCH_JSON="${BENCH_JSON:-BENCH_10.json}"
# Grid sweep rate: 4096-point batches are ~64x heavier per request than the
# SLO batches, so the offered rate is kept conservative.
GRID_RPS="${SLO_GRID_RPS:-5}"
# Client worker counts for the grid sweep: each count re-runs the full
# batch-size sweep, so the perf record shows per-batch-size p99 + evals/s
# both serially and with concurrent requests contending for the daemon's
# pooled arenas and cache shards.
GRID_WORKERS="${SLO_GRID_WORKERS:-1 4}"
# Optimizer search rate: each request is a 45-candidate design-space
# search, far heavier than an evaluate batch, and the daemon admits only
# DefaultMaxInflightOptimize of them at once.
OPT_RPS="${SLO_OPT_RPS:-2}"
BENCH_LABEL="${BENCH_LABEL:-current}"
TMP="$(mktemp -d)"

echo "== building flexwattsd (-race) and loadgen"
go build -race -o "$TMP/flexwattsd" ./cmd/flexwattsd
go build -o "$TMP/loadgen" ./cmd/loadgen

"$TMP/flexwattsd" -addr "127.0.0.1:${PORT}" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true' EXIT

echo "== waiting for /healthz"
for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" -o /dev/null 2>/dev/null; then
        break
    fi
    sleep 0.2
done
curl -fsS "$BASE/healthz" | grep -q '"status": "ok"'

echo "== loadgen: buffered endpoint (${RPS} rps, batch ${BATCH}, ${DURATION})"
"$TMP/loadgen" -addr "$BASE" -rps "$RPS" -batch "$BATCH" -duration "$DURATION" \
    | tee "$TMP/bench.txt"

echo "== loadgen: streaming endpoint"
"$TMP/loadgen" -addr "$BASE" -rps "$RPS" -batch "$BATCH" -duration "$DURATION" -stream \
    | tee -a "$TMP/bench.txt"

echo "== loadgen: optimizer endpoint (${OPT_RPS} rps, ${DURATION})"
"$TMP/loadgen" -addr "$BASE" -rps "$OPT_RPS" -duration "$DURATION" -optimize \
    | tee -a "$TMP/bench.txt"

GRID_SWEEPS=0
for W in $GRID_WORKERS; do
    echo "== loadgen: grid batch-size sweep (64/512/4096 points, ${GRID_RPS} rps, ${W} workers)"
    "$TMP/loadgen" -addr "$BASE" -rps "$GRID_RPS" -duration "$DURATION" -grid -workers "$W" \
        | tee -a "$TMP/bench.txt"
    GRID_SWEEPS=$((GRID_SWEEPS + 1))
done

echo "== SLO floor: non-zero throughput, zero request errors at low load"
# The report line carries "<n> shed <n> request_errors"; at this offered
# load nothing may be shed or fail.
if grep -E ' [1-9][0-9]* (shed|request_errors)' "$TMP/bench.txt"; then
    echo "slo: FAILED — daemon shed or errored at low offered load" >&2
    exit 1
fi
# A line with 0 successful requests never prints (loadgen exits 1), so
# both evaluate endpoints, the optimizer scenario, and three grid batch
# sizes per worker count must each have sustained throughput to reach the
# expected line count.
WANT=$((3 + 3 * GRID_SWEEPS))
LINES=$(grep -c '^Benchmark' "$TMP/bench.txt")
if [ "$LINES" -ne "$WANT" ]; then
    echo "slo: FAILED — expected $WANT report lines, got $LINES" >&2
    exit 1
fi

echo "== 5xx counters must be zero"
curl -fsS "$BASE/metrics" -o "$TMP/metrics.txt"
if grep -E 'flexwattsd_requests_total\{[^}]*status="5xx"\} [1-9]' "$TMP/metrics.txt"; then
    echo "slo: FAILED — daemon served 5xx responses" >&2
    exit 1
fi
grep -q 'flexwattsd_points_evaluated_total' "$TMP/metrics.txt"
# The optimizer scenario must have booked candidates into its counter.
grep -Eq 'flexwattsd_optimize_candidates_total [1-9]' "$TMP/metrics.txt"

echo "== recording into ${BENCH_JSON}"
go run ./cmd/benchjson -label "$BENCH_LABEL" -out "$BENCH_JSON" < "$TMP/bench.txt"

echo "== graceful shutdown"
kill -TERM "$PID"
wait "$PID"
trap - EXIT
echo "slo: all checks passed"
