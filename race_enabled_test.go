//go:build race

package repro_test

// raceDetectorEnabled reports whether this binary was built with -race.
// The race detector deliberately drops a fraction of sync.Pool puts to
// shake out unsynchronized reuse, so alloc-free pins on pooled paths are
// meaningless under it and skip themselves.
const raceDetectorEnabled = true
